package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"asterix/internal/core"
)

// E16OptimizerJoinOrder quantifies the rule-driven optimizer's greedy join
// ordering on the paper's Gleambook workload. The same 3-way join — two
// message sets fanned out from their shared author — runs on two engines
// over identical data: one with the full rule pipeline, one with only
// order-joins-greedily disabled (every other rewrite still applies, so the
// gap isolates join order). The FROM clause lists the two message sets
// first, so the naive left-deep plan pays a filtered cross product before
// ever seeing the equi-join with users; the greedy order joins each
// message set to users through its equality key instead.
func E16OptimizerJoinOrder(scale Scale, workDir string) (*Report, error) {
	rep := &Report{
		ID:     "E16",
		Claim:  "greedy join ordering: equi-connected relations join early, cross products sink — less data moved, faster joins",
		Header: []string{"engine", "time", "tuples-moved", "join-order-fired", "rows"},
	}
	dir := filepath.Join(workDir, "e16")
	//lint:ignore err-discard benchmark scratch-dir cleanup is best-effort
	defer os.RemoveAll(dir)

	open := func(sub string, disable []string) (*core.Engine, error) {
		return core.Open(core.Config{
			DataDir:          filepath.Join(dir, sub),
			Partitions:       2,
			Nodes:            2,
			NoSyncCommits:    true,
			OptimizerDisable: disable,
			Now:              fixedClock(),
		})
	}
	naive, err := open("naive", []string{"order-joins-greedily"})
	if err != nil {
		return nil, err
	}
	defer naive.Close()
	optimized, err := open("optimized", nil)
	if err != nil {
		return nil, err
	}
	defer optimized.Close()

	for _, e := range []*core.Engine{naive, optimized} {
		if err := ingestGleambook(e, scale.Users/4, scale.Messages/4, 16); err != nil {
			return nil, err
		}
	}

	// Both message sets restricted to the first K ids keeps the naive
	// cross product measurable without drowning the run.
	k := scale.Messages / 40
	query := fmt.Sprintf(`
		SELECT m1.messageId AS a, m2.messageId AS b
		FROM GleambookMessages m1, GleambookMessages m2, GleambookUsers u
		WHERE m1.authorId = u.id AND m2.authorId = u.id
		  AND m1.messageId < %d AND m2.messageId < %d
		  AND m1.messageId < m2.messageId;`, k, k)

	type runOut struct {
		elapsed time.Duration
		moved   int64
		fired   int
		rows    []string
	}
	run := func(e *core.Engine) (runOut, error) {
		before := e.Cluster().TotalStats()
		t0 := time.Now()
		res, err := e.Query(rep.Ctx(), query)
		if err != nil {
			return runOut{}, err
		}
		elapsed := time.Since(t0)
		after := e.Cluster().TotalStats()
		rows := make([]string, len(res.Rows))
		for i, v := range res.Rows {
			rows[i] = v.String()
		}
		sort.Strings(rows)
		return runOut{
			elapsed: elapsed,
			moved:   (after.TuplesIn - before.TuplesIn) + (after.TuplesOut - before.TuplesOut),
			fired:   res.RulesFired["order-joins-greedily"],
			rows:    rows,
		}, nil
	}

	nv, err := run(naive)
	if err != nil {
		return nil, fmt.Errorf("E16 naive: %w", err)
	}
	op, err := run(optimized)
	if err != nil {
		return nil, fmt.Errorf("E16 optimized: %w", err)
	}

	// Same data, same query: any answer difference is an optimizer bug.
	if len(nv.rows) != len(op.rows) {
		return nil, fmt.Errorf("E16: naive returned %d rows, optimized %d", len(nv.rows), len(op.rows))
	}
	for i := range nv.rows {
		if nv.rows[i] != op.rows[i] {
			return nil, fmt.Errorf("E16: row %d differs between engines", i)
		}
	}
	if nv.fired != 0 {
		return nil, fmt.Errorf("E16: disabled rule fired %d times on the naive engine", nv.fired)
	}
	if op.fired == 0 {
		return nil, fmt.Errorf("E16: greedy ordering never fired on the optimized engine")
	}
	if op.moved >= nv.moved {
		return nil, fmt.Errorf("E16: optimizer moved %d tuples, naive %d — join order won nothing", op.moved, nv.moved)
	}
	if op.elapsed >= nv.elapsed {
		return nil, fmt.Errorf("E16: optimized (%v) not faster than naive (%v)", op.elapsed, nv.elapsed)
	}

	rep.Rows = append(rep.Rows,
		[]string{"naive", ms(nv.elapsed), fmt.Sprint(nv.moved), fmt.Sprint(nv.fired), fmt.Sprint(len(nv.rows))},
		[]string{"optimized", ms(op.elapsed), fmt.Sprint(op.moved), fmt.Sprint(op.fired), fmt.Sprint(len(op.rows))},
	)
	rep.Measure("e16_naive_join", "ms", float64(nv.elapsed.Microseconds())/1000)
	rep.Measure("e16_optimized_join", "ms", float64(op.elapsed.Microseconds())/1000)
	rep.Measure("e16_naive_tuples_moved", "tuples", float64(nv.moved))
	rep.Measure("e16_optimized_tuples_moved", "tuples", float64(op.moved))
	rep.MeasureHigher("e16_join_speedup", "x",
		float64(nv.elapsed.Microseconds())/float64(op.elapsed.Microseconds()))
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"3-way Gleambook join, both message sets limited to messageId < %d; optimized engine fired order-joins-greedily %d time(s)",
		k, op.fired))
	return rep, nil
}
