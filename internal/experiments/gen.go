// Package experiments implements the benchmark harness of DESIGN.md: one
// runnable experiment per empirical claim in the paper (E1–E10), each
// printing the rows/series the claim predicts. The same functions back
// the root bench_test.go benchmarks and the asterixbench binary.
package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"asterix/internal/adm"
)

// GenUser produces Gleambook users matching the paper's Figure 3 schema.
func GenUser(i int, nUsers int, r *rand.Rand) *adm.Object {
	year := 2010 + i%9
	since, _ := adm.ParseDatetime(fmt.Sprintf("%d-0%d-01T00:00:00", year, 1+i%9))
	nFriends := r.Intn(8)
	friends := make(adm.Multiset, nFriends)
	for f := range friends {
		friends[f] = adm.Int64(r.Intn(nUsers))
	}
	start, _ := adm.ParseDate(fmt.Sprintf("%d-06-01", 2005+i%14))
	return adm.NewObject(
		adm.Field{Name: "id", Value: adm.Int64(i)},
		adm.Field{Name: "alias", Value: adm.String(fmt.Sprintf("user%06d", i))},
		adm.Field{Name: "name", Value: adm.String(fmt.Sprintf("Gleambook User %d", i))},
		adm.Field{Name: "userSince", Value: since},
		adm.Field{Name: "friendIds", Value: friends},
		adm.Field{Name: "employment", Value: adm.Array{adm.NewObject(
			adm.Field{Name: "organizationName", Value: adm.String(fmt.Sprintf("Org%d", i%100))},
			adm.Field{Name: "startDate", Value: start},
		)}},
	)
}

// GenMessage produces Gleambook messages; about half carry a location.
func GenMessage(i, nUsers int, r *rand.Rand) *adm.Object {
	o := adm.NewObject(
		adm.Field{Name: "messageId", Value: adm.Int64(i)},
		adm.Field{Name: "authorId", Value: adm.Int64(r.Intn(nUsers))},
		adm.Field{Name: "message", Value: adm.String(messageText(i, r))},
	)
	if i%2 == 0 {
		o.Set("senderLocation", adm.Point{
			X: -180 + r.Float64()*360,
			Y: -90 + r.Float64()*180,
		})
	}
	return o
}

var topicWords = []string{"verizon", "sprint", "tmobile", "iphone", "pixel",
	"plan", "signal", "coverage", "battery", "speed", "price", "support"}

func messageText(i int, r *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString("message ")
	n := 3 + r.Intn(8)
	for w := 0; w < n; w++ {
		sb.WriteString(topicWords[r.Intn(len(topicWords))])
		sb.WriteByte(' ')
	}
	fmt.Fprintf(&sb, "num%d", i)
	return sb.String()
}

// GenPoint produces point records on the default world for spatial
// experiments.
func GenPoint(i int, r *rand.Rand) *adm.Object {
	return adm.NewObject(
		adm.Field{Name: "id", Value: adm.Int64(i)},
		adm.Field{Name: "loc", Value: adm.Point{
			X: -180 + r.Float64()*360,
			Y: -90 + r.Float64()*180,
		}},
		adm.Field{Name: "payload", Value: adm.String(strings.Repeat("x", 64))},
	)
}

// WriteAccessLog writes a Figure 3(b)-shaped delimited access log and
// returns its path.
func WriteAccessLog(dir string, n, nUsers int, seed int64) (string, error) {
	r := rand.New(rand.NewSource(seed))
	path := filepath.Join(dir, "accesses.txt")
	var sb strings.Builder
	for i := 0; i < n; i++ {
		day := 1 + r.Intn(28)
		fmt.Fprintf(&sb, "10.0.%d.%d|2019-03-%02dT%02d:00:00|user%06d|GET|/p%d|200|%d\n",
			i%256, r.Intn(256), day, r.Intn(24), r.Intn(nUsers), i, 100+r.Intn(5000))
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// accessLogDDL is the Figure 3(b) external dataset definition.
func accessLogDDL(path string) string {
	return fmt.Sprintf(`
CREATE TYPE AccessLogType AS CLOSED {
	ip: string, time: string, user: string, verb: string,
	'path': string, stat: int32, size: int32
};
CREATE EXTERNAL DATASET AccessLog(AccessLogType) USING localfs
	(("path"="localhost://%s"), ("format"="delimited-text"), ("delimiter"="|"));`, path)
}

// gleambookDDL is the Figure 3(a) schema.
const gleambookDDL = `
CREATE TYPE EmploymentType AS {
	organizationName: string,
	startDate: date,
	endDate: date?
};
CREATE TYPE GleambookUserType AS {
	id: int,
	alias: string,
	name: string,
	userSince: datetime,
	friendIds: {{ int }},
	employment: [EmploymentType]
};
CREATE TYPE GleambookMessageType AS {
	messageId: int,
	authorId: int,
	inResponseTo: int?,
	senderLocation: point?,
	message: string
};
CREATE DATASET GleambookUsers(GleambookUserType) PRIMARY KEY id;
CREATE DATASET GleambookMessages(GleambookMessageType) PRIMARY KEY messageId;
`
