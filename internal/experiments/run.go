package experiments

import (
	"fmt"
	"runtime"
	"time"

	"asterix/internal/benchfmt"
	"asterix/internal/obs"
)

// RunOne executes a single experiment under instrumentation: wall time,
// allocation deltas (cumulative MemStats counters, so GC cannot deflate
// them), and the report's own measurements/waits, packaged as one
// benchfmt.Experiment.
func RunOne(ex NamedExperiment, scale Scale, workDir string) (*Report, benchfmt.Experiment, error) {
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	rep, err := ex.Run(scale, workDir)
	wall := time.Since(t0)
	if err != nil {
		return nil, benchfmt.Experiment{}, fmt.Errorf("%s: %w", ex.ID, err)
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	bx := benchfmt.Experiment{
		ID:               rep.ID,
		Claim:            rep.Claim,
		WallMS:           float64(wall.Microseconds()) / 1000,
		Allocs:           after.Mallocs - before.Mallocs,
		AllocBytes:       after.TotalAlloc - before.TotalAlloc,
		PeakWorkingBytes: rep.PeakWorking,
		Measurements:     rep.Measurements,
		Table: benchfmt.Table{
			Header: rep.Header,
			Rows:   rep.Rows,
			Notes:  rep.Notes,
		},
	}
	waits := rep.Waits()
	if waits.Total() > 0 {
		bx.WaitMS = map[string]float64{}
		for k := obs.WaitKind(0); int(k) < len(waits); k++ {
			if waits[k] > 0 {
				bx.WaitMS[k.String()] = float64(waits[k].Microseconds()) / 1000
			}
		}
	}
	return rep, bx, nil
}
