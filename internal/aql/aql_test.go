package aql

import (
	"testing"

	"asterix/internal/sqlpp"
)

func TestParseBasicFLWOR(t *testing.T) {
	q, err := Parse(`
		for $u in dataset GleambookUsers
		where $u.id > 100
		order by $u.name desc
		limit 10
		return {"name": $u.name, "id": $u.id}
	`)
	if err != nil {
		t.Fatal(err)
	}
	sel := q.Body.(*sqlpp.SelectExpr)
	if len(sel.From) != 1 || sel.From[0].Alias != "$u" {
		t.Fatalf("from: %+v", sel.From)
	}
	ds, ok := sel.From[0].Expr.(*sqlpp.VarRef)
	if !ok || ds.Name != "GleambookUsers" {
		t.Fatalf("dataset ref: %+v", sel.From[0].Expr)
	}
	if sel.Where == nil || sel.Select.Value == nil {
		t.Fatal("where/return missing")
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Fatalf("order: %+v", sel.OrderBy)
	}
	if sel.Limit == nil {
		t.Fatal("limit missing")
	}
}

func TestParseMultipleForsAndLet(t *testing.T) {
	q, err := Parse(`
		for $u in dataset Users
		for $m in dataset Messages
		let $len := string_length($m.message)
		where $m.authorId = $u.id and $len > 10
		return {"user": $u.name, "len": $len}
	`)
	if err != nil {
		t.Fatal(err)
	}
	sel := q.Body.(*sqlpp.SelectExpr)
	if len(sel.From) != 2 {
		t.Fatalf("from terms: %d", len(sel.From))
	}
	if len(sel.Lets) != 1 || sel.Lets[0].Var != "$len" {
		t.Fatalf("lets: %+v", sel.Lets)
	}
}

func TestParseGroupByWith(t *testing.T) {
	q, err := Parse(`
		for $m in dataset Messages
		group by $a := $m.authorId with $m
		return {"author": $a, "cnt": count($m)}
	`)
	if err != nil {
		t.Fatal(err)
	}
	sel := q.Body.(*sqlpp.SelectExpr)
	if len(sel.GroupBy) != 1 || sel.GroupBy[0].Alias != "$a" {
		t.Fatalf("group by: %+v", sel.GroupBy)
	}
	if sel.GroupAs == "" {
		t.Fatal("group as binding missing")
	}
	// count($m) stays a SQL-style aggregate over the grouped variable
	// (the group-by operator computes it over pre-group rows).
	obj := sel.Select.Value.(*sqlpp.ObjectConstructor)
	cnt := obj.Fields[1].Value.(*sqlpp.Call)
	if cnt.Fn != "count" {
		t.Fatalf("cnt fn: %s", cnt.Fn)
	}
	if vr, ok := cnt.Args[0].(*sqlpp.VarRef); !ok || vr.Name != "$m" {
		t.Fatalf("aggregate arg: %T %v", cnt.Args[0], cnt.Args[0])
	}
}

func TestNonAggregateWithVarUsesGroupAs(t *testing.T) {
	q, err := Parse(`
		for $m in dataset Messages
		group by $a := $m.authorId with $m
		return {"author": $a, "lens": coll_count($m)}
	`)
	if err != nil {
		t.Fatal(err)
	}
	sel := q.Body.(*sqlpp.SelectExpr)
	obj := sel.Select.Value.(*sqlpp.ObjectConstructor)
	cc := obj.Fields[1].Value.(*sqlpp.Call)
	inner, ok := cc.Args[0].(*sqlpp.Call)
	if !ok || inner.Fn != "field_collect" {
		t.Fatalf("non-aggregate with-var should read GROUP AS: %T", cc.Args[0])
	}
}

func TestParseDatasetFunctionForm(t *testing.T) {
	q, err := Parse(`for $x in dataset("Users") return $x`)
	if err != nil {
		t.Fatal(err)
	}
	sel := q.Body.(*sqlpp.SelectExpr)
	ds := sel.From[0].Expr.(*sqlpp.VarRef)
	if ds.Name != "Users" {
		t.Fatalf("dataset: %s", ds.Name)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`return 1`,                        // no for
		`for u in dataset Users return u`, // var without $
		`for $u in dataset Users`,         // no return
		`for $u in dataset Users return $u extra`,
		`for $u in dataset Users let $x = 1 return $u`, // = instead of :=
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestDistinctReturn(t *testing.T) {
	q, err := Parse(`for $u in dataset Users distinct return $u.name`)
	if err != nil {
		t.Fatal(err)
	}
	sel := q.Body.(*sqlpp.SelectExpr)
	if !sel.Select.Distinct {
		t.Error("distinct not set")
	}
}
