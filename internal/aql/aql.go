// Package aql implements the deprecated AQL query language as a peer of
// SQL++: a FLWOR-style (FOR/LET/WHERE/GROUP BY/ORDER BY/LIMIT/RETURN)
// front end that lowers to the same AST as SQL++ and therefore shares the
// entire Algebricks compilation pipeline and Hyracks runtime — exactly how
// the paper describes SQL++ being "implemented fairly quickly as a peer of
// AQL". AQL came first historically; here the lowering runs the other way,
// which preserves the architectural point: two syntaxes, one algebra.
package aql

import (
	"fmt"
	"strings"

	"asterix/internal/adm"
	"asterix/internal/sqlpp"
)

// Parse parses an AQL query into the shared SQL++ AST. Supported clauses:
//
//	for $v in dataset Name | for $v in expr
//	let $x := expr
//	where expr
//	group by $k := expr with $v
//	order by expr [desc]
//	limit expr
//	distinct? return expr
//
// Multiple for clauses form a cross product, exactly like SQL++ FROM
// terms.
func Parse(src string) (*sqlpp.QueryStmt, error) {
	p, err := sqlpp.NewParser(src)
	if err != nil {
		return nil, err
	}
	sel := &sqlpp.SelectExpr{}
	sawFor := false

	// withVars maps AQL "with" variables to the GROUP AS binding.
	var withVars []string
	const groupAsName = "$aql_group"

	for {
		switch {
		case p.PeekKeyword("FOR"):
			p.AcceptKeyword("FOR")
			sawFor = true
			v, err := parseVar(p)
			if err != nil {
				return nil, err
			}
			if err := p.ExpectKeyword("IN"); err != nil {
				return nil, err
			}
			src, err := parseForSource(p)
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, sqlpp.FromTerm{Expr: src, Alias: v})

		case p.PeekKeyword("LET"):
			p.AcceptKeyword("LET")
			v, err := parseVar(p)
			if err != nil {
				return nil, err
			}
			if err := expectAssign(p); err != nil {
				return nil, err
			}
			e, err := p.ParseExpression()
			if err != nil {
				return nil, err
			}
			sel.Lets = append(sel.Lets, sqlpp.LetClause{Var: v, Expr: e})

		case p.PeekKeyword("WHERE"):
			p.AcceptKeyword("WHERE")
			e, err := p.ParseExpression()
			if err != nil {
				return nil, err
			}
			if sel.Where == nil {
				sel.Where = e
			} else {
				sel.Where = &sqlpp.Binary{Op: "AND", L: sel.Where, R: e}
			}

		case p.PeekKeyword("GROUP"):
			p.AcceptKeyword("GROUP")
			if err := p.ExpectKeyword("BY"); err != nil {
				return nil, err
			}
			for {
				v, err := parseVar(p)
				if err != nil {
					return nil, err
				}
				if err := expectAssign(p); err != nil {
					return nil, err
				}
				e, err := p.ParseExpression()
				if err != nil {
					return nil, err
				}
				sel.GroupBy = append(sel.GroupBy, sqlpp.GroupKey{Expr: e, Alias: v})
				if !p.AcceptOperator(",") {
					break
				}
			}
			if p.PeekKeyword("WITH") {
				p.AcceptKeyword("WITH")
				for {
					v, err := parseVar(p)
					if err != nil {
						return nil, err
					}
					withVars = append(withVars, v)
					if !p.AcceptOperator(",") {
						break
					}
				}
				sel.GroupAs = groupAsName
			}

		case p.PeekKeyword("ORDER"):
			p.AcceptKeyword("ORDER")
			if err := p.ExpectKeyword("BY"); err != nil {
				return nil, err
			}
			for {
				e, err := p.ParseExpression()
				if err != nil {
					return nil, err
				}
				item := sqlpp.OrderItem{Expr: e}
				if p.AcceptKeyword("DESC") {
					item.Desc = true
				} else {
					p.AcceptKeyword("ASC")
				}
				sel.OrderBy = append(sel.OrderBy, item)
				if !p.AcceptOperator(",") {
					break
				}
			}

		case p.PeekKeyword("LIMIT"):
			p.AcceptKeyword("LIMIT")
			e, err := p.ParseExpression()
			if err != nil {
				return nil, err
			}
			sel.Limit = e

		case p.PeekKeyword("DISTINCT"):
			p.AcceptKeyword("DISTINCT")
			if !p.PeekKeyword("RETURN") {
				return nil, p.Errorf("DISTINCT must immediately precede RETURN")
			}
			sel.Select.Distinct = true

		case p.PeekKeyword("RETURN"):
			p.AcceptKeyword("RETURN")
			e, err := p.ParseExpression()
			if err != nil {
				return nil, err
			}
			p.AcceptOperator(";")
			if !p.AtEOF() {
				return nil, p.Errorf("trailing input after RETURN expression")
			}
			if !sawFor {
				return nil, fmt.Errorf("aql: query requires at least one FOR clause")
			}
			if len(withVars) > 0 {
				e = rewriteWithVars(e, withVars, groupAsName)
				for i := range sel.OrderBy {
					sel.OrderBy[i].Expr = rewriteWithVars(sel.OrderBy[i].Expr, withVars, groupAsName)
				}
			}
			sel.Select.Value = e
			return &sqlpp.QueryStmt{Body: sel}, nil

		default:
			return nil, p.Errorf("unexpected token in AQL query")
		}
	}
}

// parseVar parses $name (the lexer treats $name as one identifier).
func parseVar(p *sqlpp.Parser) (string, error) {
	name, err := p.ParseIdentifier()
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(name, "$") {
		return "", fmt.Errorf("aql: variables start with '$', got %q", name)
	}
	return name, nil
}

// parseForSource parses `dataset Name`, `dataset("Name")`, or a general
// expression.
func parseForSource(p *sqlpp.Parser) (sqlpp.Expr, error) {
	if p.PeekKeyword("DATASET") || p.PeekIdent("dataset") {
		if !p.AcceptKeyword("DATASET") {
			if _, err := p.ParseIdentifier(); err != nil {
				return nil, err
			}
		}
		if p.AcceptOperator("(") {
			e, err := p.ParseExpression()
			if err != nil {
				return nil, err
			}
			if err := p.ExpectOperator(")"); err != nil {
				return nil, err
			}
			if lit, ok := e.(*sqlpp.Literal); ok {
				return &sqlpp.VarRef{Name: litString(lit)}, nil
			}
			return nil, fmt.Errorf("aql: dataset() requires a string literal")
		}
		name, err := p.ParseIdentifier()
		if err != nil {
			return nil, err
		}
		return &sqlpp.VarRef{Name: name}, nil
	}
	return p.ParseExpression()
}

func litString(l *sqlpp.Literal) string {
	if s, ok := l.Value.(adm.String); ok {
		return string(s)
	}
	return ""
}

// expectAssign consumes ":=".
func expectAssign(p *sqlpp.Parser) error {
	if err := p.ExpectOperator(":"); err != nil {
		return err
	}
	return p.ExpectOperator("=")
}

// isSQLAggregate mirrors the SQL++ aggregate set (kept local to avoid a
// front-end dependency on the compiler package).
func isSQLAggregate(fn string) bool {
	switch fn {
	case "count", "sum", "min", "max", "avg", "array_agg":
		return true
	}
	return false
}

// rewriteWithVars rewrites post-group references to a grouped variable $v
// into field_collect(groupAs, "$v") — the array of $v's values within the
// group (AQL's "with" semantics on top of SQL++'s GROUP AS).
func rewriteWithVars(e sqlpp.Expr, withVars []string, groupAs string) sqlpp.Expr {
	isWith := func(name string) bool {
		for _, v := range withVars {
			if v == name {
				return true
			}
		}
		return false
	}
	var rw func(sqlpp.Expr) sqlpp.Expr
	rw = func(e sqlpp.Expr) sqlpp.Expr {
		switch x := e.(type) {
		case *sqlpp.VarRef:
			if isWith(x.Name) {
				return &sqlpp.Call{Fn: "field_collect", Args: []sqlpp.Expr{
					&sqlpp.VarRef{Name: groupAs},
					&sqlpp.Literal{Value: adm.String(x.Name)},
				}}
			}
			return x
		case *sqlpp.FieldAccess:
			return &sqlpp.FieldAccess{Base: rw(x.Base), Field: x.Field}
		case *sqlpp.IndexAccess:
			return &sqlpp.IndexAccess{Base: rw(x.Base), Index: rw(x.Index)}
		case *sqlpp.Call:
			// A SQL-style aggregate applied directly to a grouped
			// variable stays an aggregate over the pre-group rows
			// (count($m) → COUNT(m)); only non-aggregate uses read the
			// GROUP AS collection.
			if isSQLAggregate(x.Fn) && len(x.Args) == 1 {
				if vr, ok := x.Args[0].(*sqlpp.VarRef); ok && isWith(vr.Name) {
					return &sqlpp.Call{Fn: x.Fn, Distinct: x.Distinct, Args: []sqlpp.Expr{vr}}
				}
			}
			out := &sqlpp.Call{Fn: x.Fn, Distinct: x.Distinct}
			for _, a := range x.Args {
				out.Args = append(out.Args, rw(a))
			}
			return out
		case *sqlpp.Unary:
			return &sqlpp.Unary{Op: x.Op, X: rw(x.X)}
		case *sqlpp.Binary:
			return &sqlpp.Binary{Op: x.Op, L: rw(x.L), R: rw(x.R)}
		case *sqlpp.ObjectConstructor:
			out := &sqlpp.ObjectConstructor{}
			for _, f := range x.Fields {
				out.Fields = append(out.Fields, sqlpp.ObjectField{Name: rw(f.Name), Value: rw(f.Value)})
			}
			return out
		case *sqlpp.ArrayConstructor:
			out := &sqlpp.ArrayConstructor{}
			for _, el := range x.Elems {
				out.Elems = append(out.Elems, rw(el))
			}
			return out
		default:
			return e
		}
	}
	return rw(e)
}
