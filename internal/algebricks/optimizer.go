package algebricks

import (
	"strings"

	"asterix/internal/obs"
)

// Rule is one named rewrite. Apply sweeps the whole plan and returns the
// (possibly replaced) root plus the number of rewrite sites that fired;
// zero means the plan is unchanged.
type Rule struct {
	Name  string
	Apply func(tr *Translator, plan Op) (Op, int)
}

// DefaultMaxPasses bounds the fixpoint loop. Each pass runs every rule
// once over the whole plan; rules that sink operators one level per pass
// (select pushdown) need a pass per level, so the budget scales with
// realistic plan depth rather than rule count.
const DefaultMaxPasses = 16

// OptReport summarizes one optimizer run.
type OptReport struct {
	// Fired maps rule name -> number of rewrite sites that fired.
	Fired map[string]int
	// Passes is the number of fixpoint passes executed.
	Passes int
	// BudgetExhausted is set when the pass budget ran out before fixpoint.
	BudgetExhausted bool
}

// TotalFired sums all rule hits.
func (r OptReport) TotalFired() int {
	n := 0
	for _, v := range r.Fired {
		n += v
	}
	return n
}

// Optimizer runs a registry of rewrite rules to fixpoint under a bounded
// pass budget, counting per-rule hits into an obs registry when wired.
type Optimizer struct {
	Rules     []Rule
	MaxPasses int
	// Disabled names rules to skip (experiment ablations, OptimizerDisable
	// config knob).
	Disabled map[string]bool

	fired   map[string]*obs.Counter
	mPlans  *obs.Counter
	mPasses *obs.Counter
	mBudget *obs.Counter
}

// NewOptimizer builds the default rule pipeline, registering per-rule
// fired counters on reg (obs handles are nil-safe, so reg may be nil).
func NewOptimizer(reg *obs.Registry) *Optimizer {
	o := &Optimizer{
		Rules:     DefaultRules(),
		MaxPasses: DefaultMaxPasses,
		fired:     map[string]*obs.Counter{},
	}
	for _, r := range o.Rules {
		o.fired[r.Name] = reg.Counter(
			"optimizer_rule_"+metricToken(r.Name)+"_fired_total",
			"Rewrite sites fired by optimizer rule "+r.Name)
	}
	o.mPlans = reg.Counter("optimizer_plans_total", "Plans optimized")
	o.mPasses = reg.Counter("optimizer_passes_total", "Fixpoint passes executed")
	o.mBudget = reg.Counter("optimizer_budget_exhausted_total",
		"Optimizer runs that hit the pass budget before fixpoint")
	return o
}

// metricToken converts a rule name to a metric-name token.
func metricToken(name string) string {
	return strings.ReplaceAll(name, "-", "_")
}

// Optimize runs the rules to fixpoint (or pass budget) and reports what
// fired.
func (o *Optimizer) Optimize(tr *Translator, plan Op) (Op, OptReport) {
	rep := OptReport{Fired: map[string]int{}}
	max := o.MaxPasses
	if max <= 0 {
		max = DefaultMaxPasses
	}
	for pass := 0; pass < max; pass++ {
		rep.Passes = pass + 1
		changed := false
		for _, r := range o.Rules {
			if o.Disabled[r.Name] {
				continue
			}
			out, hits := r.Apply(tr, plan)
			if hits > 0 {
				plan = out
				changed = true
				rep.Fired[r.Name] += hits
				o.fired[r.Name].Add(int64(hits))
			}
		}
		if !changed {
			break
		}
		if pass == max-1 {
			rep.BudgetExhausted = true
			o.mBudget.Inc()
		}
	}
	o.mPlans.Inc()
	o.mPasses.Add(int64(rep.Passes))
	return plan, rep
}

// Optimize applies the default rule registry to fixpoint. It is the
// compatibility entry point for callers that do not hold an Optimizer;
// the report of the last run is kept on the translator.
func (tr *Translator) Optimize(plan Op) Op {
	out, rep := NewOptimizer(nil).Optimize(tr, plan)
	tr.LastOpt = rep
	return out
}

// setInput replaces the i-th input of op (as ordered by Inputs()).
func setInput(op Op, i int, child Op) {
	switch o := op.(type) {
	case *SelectOp:
		o.In = child
	case *AssignOp:
		o.In = child
	case *UnnestOp:
		o.In = child
	case *ProjectOp:
		o.In = child
	case *JoinOp:
		if i == 0 {
			o.L = child
		} else {
			o.R = child
		}
	case *GroupOp:
		o.In = child
	case *ResultOp:
		o.In = child
	case *DistinctOp:
		o.In = child
	case *OrderOp:
		o.In = child
	case *LimitOp:
		o.In = child
	case *UnionAllOp:
		o.Ins[i] = child
	}
}

// sweep applies f once to every node bottom-up (children before parents)
// and returns the new root plus the number of nodes f changed. Nodes
// introduced by f are not revisited within the sweep; the fixpoint loop
// picks them up on the next pass.
func sweep(plan Op, f func(Op) (Op, bool)) (Op, int) {
	hits := 0
	var walk func(Op) Op
	walk = func(op Op) Op {
		for i, in := range op.Inputs() {
			nin := walk(in)
			if nin != in {
				setInput(op, i, nin)
			}
		}
		out, changed := f(op)
		if changed {
			hits++
		}
		return out
	}
	return walk(plan), hits
}
