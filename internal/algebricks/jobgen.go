package algebricks

import (
	"errors"
	"fmt"

	"asterix/internal/adm"
	"asterix/internal/hyracks"
)

// errScanLimit stops a partition scan early once a pushed-down limit is
// satisfied; it never escapes the scan operator.
var errScanLimit = errors.New("scan limit reached")

// JobGen lowers an optimized logical plan to a Hyracks job.
type JobGen struct {
	Cluster *hyracks.Cluster
	Catalog Catalog
	Ev      *Evaluator
	// Parallelism for compute operators (joins, group-bys); scans use
	// the dataset's partition count.
	Parallelism int
}

// built tracks a lowered subplan.
type built struct {
	op     *hyracks.Operator
	schema []string
	par    int
	// ordered is non-nil when the stream is globally ordered (single
	// partition) by this comparator.
	ordered *hyracks.Comparator
}

// Build lowers plan into a job whose results land in coll as single-value
// tuples (the $result column).
func (g *JobGen) Build(plan Op, coll *hyracks.Collector) (*hyracks.Job, error) {
	if g.Parallelism < 1 {
		g.Parallelism = len(g.Cluster.Nodes)
	}
	j := hyracks.NewJob()
	b, err := g.buildOp(j, plan)
	if err != nil {
		return nil, err
	}
	// Project down to the result column.
	col := indexOf(b.schema, ResultVar)
	if col < 0 {
		return nil, fmt.Errorf("jobgen: plan produces no %s column", ResultVar)
	}
	proj := j.Add(hyracks.NewMap("project-result", b.par, func(tc *hyracks.TaskContext, t hyracks.Tuple, emit func(hyracks.Tuple) error) error {
		return emit(hyracks.Tuple{t[col]})
	}))
	j.MustConnect(b.op, proj, 0, hyracks.OneToOne())
	sinkPar := b.par
	conn := hyracks.OneToOne()
	if b.ordered != nil || b.par == 1 {
		sinkPar = 1
	} else {
		sinkPar = 1
		conn = hyracks.MergeUnordered()
	}
	sink := j.Add(hyracks.NewSink("sink", sinkPar, coll))
	j.MustConnect(proj, sink, 0, conn)
	return j, nil
}

// envFor builds an evaluation environment over a tuple.
func envFor(schema []string, t hyracks.Tuple) *Env {
	return NewEnv(nil, schema, t)
}

func indexOf(schema []string, name string) int {
	for i, s := range schema {
		if s == name {
			return i
		}
	}
	return -1
}

func (g *JobGen) buildOp(j *hyracks.Job, plan Op) (built, error) {
	switch o := plan.(type) {
	case *EtsOp:
		op := j.Add(hyracks.NewScan("ets", 1, func(tc *hyracks.TaskContext, emit func(hyracks.Tuple) error) error {
			return emit(hyracks.Tuple{})
		}))
		return built{op: op, schema: nil, par: 1}, nil

	case *ScanOp:
		ds, ok := g.Catalog.Resolve(o.Dataset)
		if !ok {
			return built{}, fmt.Errorf("jobgen: unknown dataset %q", o.Dataset)
		}
		par := ds.Partitions()
		maxT := o.MaxTuples
		op := j.Add(hyracks.NewScan("scan-"+o.Dataset, par, func(tc *hyracks.TaskContext, emit func(hyracks.Tuple) error) error {
			var n int64
			err := ds.ScanPartition(tc.Partition, func(rec adm.Value) error {
				if maxT > 0 && n >= maxT {
					return errScanLimit
				}
				n++
				return emit(hyracks.Tuple{rec})
			})
			if errors.Is(err, errScanLimit) {
				return nil
			}
			return err
		}))
		return built{op: op, schema: []string{o.Var}, par: par}, nil

	case *IndexSearchOp:
		idx, ok := g.Catalog.ResolveIndex(o.Dataset, o.Field)
		if !ok {
			return built{}, fmt.Errorf("jobgen: no index on %s.%s", o.Dataset, o.Field)
		}
		ds, ok := g.Catalog.Resolve(o.Dataset)
		if !ok {
			return built{}, fmt.Errorf("jobgen: unknown dataset %q", o.Dataset)
		}
		par := ds.Partitions()
		// Evaluate the constant search arguments now.
		env := NewEnv(nil, nil, nil)
		var lo, hi adm.Value
		var rect adm.Rectangle
		var token string
		var err error
		if o.Lo != nil {
			if lo, err = g.Ev.Eval(o.Lo, env); err != nil {
				return built{}, err
			}
		}
		if o.Hi != nil {
			if hi, err = g.Ev.Eval(o.Hi, env); err != nil {
				return built{}, err
			}
		}
		if o.Rect != nil {
			rv, err := g.Ev.Eval(o.Rect, env)
			if err != nil {
				return built{}, err
			}
			switch r := rv.(type) {
			case adm.Rectangle:
				rect = r
			case adm.Point:
				rect = adm.Rectangle{MinX: r.X, MinY: r.Y, MaxX: r.X, MaxY: r.Y}
			default:
				return built{}, fmt.Errorf("jobgen: rtree search requires a rectangle")
			}
		}
		if o.Token != nil {
			tv, err := g.Ev.Eval(o.Token, env)
			if err != nil {
				return built{}, err
			}
			s, ok := tv.(adm.String)
			if !ok {
				return built{}, fmt.Errorf("jobgen: keyword search requires a string")
			}
			token = string(s)
		}
		kind := o.Kind
		maxT := o.MaxTuples
		op := j.Add(hyracks.NewScan("idx-"+o.Dataset+"."+o.Field, par, func(tc *hyracks.TaskContext, emit func(hyracks.Tuple) error) error {
			var n int64
			cb := func(rec adm.Value) error {
				if maxT > 0 && n >= maxT {
					return errScanLimit
				}
				n++
				return emit(hyracks.Tuple{rec})
			}
			var err error
			switch kind {
			case "BTREE":
				err = idx.SearchRange(tc.Partition, lo, hi, o.LoInc, o.HiInc, cb)
			case "RTREE", "ZORDER", "HILBERT", "GRID":
				err = idx.SearchSpatial(tc.Partition, rect, cb)
			case "KEYWORD":
				err = idx.SearchKeyword(tc.Partition, token, cb)
			default:
				err = fmt.Errorf("jobgen: unknown index kind %s", kind)
			}
			if errors.Is(err, errScanLimit) {
				return nil
			}
			return err
		}))
		return built{op: op, schema: []string{o.Var}, par: par}, nil

	case *SelectOp:
		in, err := g.buildOp(j, o.In)
		if err != nil {
			return built{}, err
		}
		schema := in.schema
		cond := o.Cond
		op := j.Add(hyracks.NewMap("select", in.par, func(tc *hyracks.TaskContext, t hyracks.Tuple, emit func(hyracks.Tuple) error) error {
			ok, err := g.Ev.truthyExpr(cond, envFor(schema, t))
			if err != nil {
				return err
			}
			if ok {
				return emit(t)
			}
			return nil
		}))
		j.MustConnect(in.op, op, 0, hyracks.OneToOne())
		return built{op: op, schema: schema, par: in.par, ordered: in.ordered}, nil

	case *AssignOp:
		in, err := g.buildOp(j, o.In)
		if err != nil {
			return built{}, err
		}
		schema := in.schema
		expr := o.Expr
		op := j.Add(hyracks.NewMap("assign-"+o.Var, in.par, func(tc *hyracks.TaskContext, t hyracks.Tuple, emit func(hyracks.Tuple) error) error {
			v, err := g.Ev.Eval(expr, envFor(schema, t))
			if err != nil {
				return err
			}
			out := make(hyracks.Tuple, 0, len(t)+1)
			out = append(out, t...)
			out = append(out, v)
			return emit(out)
		}))
		j.MustConnect(in.op, op, 0, hyracks.OneToOne())
		return built{op: op, schema: plan.Schema(), par: in.par, ordered: in.ordered}, nil

	case *UnnestOp:
		in, err := g.buildOp(j, o.In)
		if err != nil {
			return built{}, err
		}
		schema := in.schema
		expr := o.Expr
		outer := o.Outer
		op := j.Add(hyracks.NewMap("unnest-"+o.Var, in.par, func(tc *hyracks.TaskContext, t hyracks.Tuple, emit func(hyracks.Tuple) error) error {
			v, err := g.Ev.Eval(expr, envFor(schema, t))
			if err != nil {
				return err
			}
			elems, ok := asCollection(v)
			if !ok || len(elems) == 0 {
				if outer {
					out := append(append(hyracks.Tuple{}, t...), adm.Missing)
					return emit(out)
				}
				return nil
			}
			for _, el := range elems {
				out := make(hyracks.Tuple, 0, len(t)+1)
				out = append(out, t...)
				out = append(out, el)
				if err := emit(out); err != nil {
					return err
				}
			}
			return nil
		}))
		j.MustConnect(in.op, op, 0, hyracks.OneToOne())
		return built{op: op, schema: plan.Schema(), par: in.par}, nil

	case *ProjectOp:
		in, err := g.buildOp(j, o.In)
		if err != nil {
			return built{}, err
		}
		cols := make([]int, len(o.Cols))
		for i, c := range o.Cols {
			cols[i] = indexOf(in.schema, c)
			if cols[i] < 0 {
				return built{}, fmt.Errorf("jobgen: project column %q missing", c)
			}
		}
		op := j.Add(hyracks.NewMap("project", in.par, func(tc *hyracks.TaskContext, t hyracks.Tuple, emit func(hyracks.Tuple) error) error {
			out := make(hyracks.Tuple, len(cols))
			for i, ci := range cols {
				out[i] = t[ci]
			}
			return emit(out)
		}))
		j.MustConnect(in.op, op, 0, hyracks.OneToOne())
		return built{op: op, schema: plan.Schema(), par: in.par, ordered: in.ordered}, nil

	case *JoinOp:
		return g.buildJoin(j, o)

	case *GroupOp:
		return g.buildGroup(j, o)

	case *ResultOp:
		in, err := g.buildOp(j, o.In)
		if err != nil {
			return built{}, err
		}
		schema := in.schema
		expr := o.Expr
		op := j.Add(hyracks.NewMap("result", in.par, func(tc *hyracks.TaskContext, t hyracks.Tuple, emit func(hyracks.Tuple) error) error {
			v, err := g.Ev.Eval(expr, envFor(schema, t))
			if err != nil {
				return err
			}
			out := make(hyracks.Tuple, 0, len(t)+1)
			out = append(out, t...)
			out = append(out, v)
			return emit(out)
		}))
		j.MustConnect(in.op, op, 0, hyracks.OneToOne())
		return built{op: op, schema: plan.Schema(), par: in.par, ordered: in.ordered}, nil

	case *DistinctOp:
		in, err := g.buildOp(j, o.In)
		if err != nil {
			return built{}, err
		}
		col := indexOf(in.schema, ResultVar)
		if col < 0 {
			return built{}, fmt.Errorf("jobgen: distinct without result column")
		}
		par := g.Parallelism
		proj := j.Add(hyracks.NewMap("distinct-project", in.par, func(tc *hyracks.TaskContext, t hyracks.Tuple, emit func(hyracks.Tuple) error) error {
			return emit(hyracks.Tuple{t[col]})
		}))
		j.MustConnect(in.op, proj, 0, hyracks.OneToOne())
		d := j.Add(hyracks.NewDistinct("distinct", par, 1))
		j.MustConnect(proj, d, 0, hyracks.HashPartition(0))
		return built{op: d, schema: []string{ResultVar}, par: par}, nil

	case *OrderOp:
		in, err := g.buildOp(j, o.In)
		if err != nil {
			return built{}, err
		}
		schema := in.schema
		// Append sort-key columns.
		items := o.Items
		keyed := j.Add(hyracks.NewMap("order-keys", in.par, func(tc *hyracks.TaskContext, t hyracks.Tuple, emit func(hyracks.Tuple) error) error {
			out := make(hyracks.Tuple, 0, len(t)+len(items))
			out = append(out, t...)
			for _, it := range items {
				v, err := g.Ev.Eval(it.Expr, envFor(schema, t))
				if err != nil {
					return err
				}
				out = append(out, v)
			}
			return emit(out)
		}))
		j.MustConnect(in.op, keyed, 0, hyracks.OneToOne())
		cmp := hyracks.Comparator{}
		for i, it := range items {
			cmp.Columns = append(cmp.Columns, len(schema)+i)
			cmp.Desc = append(cmp.Desc, it.Desc)
		}
		sorter := j.Add(hyracks.NewSort("order", in.par, cmp))
		j.MustConnect(keyed, sorter, 0, hyracks.OneToOne())
		// Concentrate to a single ordered stream and drop key columns.
		strip := j.Add(hyracks.NewMap("order-strip", 1, func(tc *hyracks.TaskContext, t hyracks.Tuple, emit func(hyracks.Tuple) error) error {
			return emit(t[:len(schema)])
		}))
		j.MustConnect(sorter, strip, 0, hyracks.MergeOrdered(cmp))
		return built{op: strip, schema: schema, par: 1, ordered: &cmp}, nil

	case *UnionAllOp:
		union := j.Add(hyracks.NewUnionAll("union-all", 1, len(o.Ins)))
		for port, inPlan := range o.Ins {
			in, err := g.buildOp(j, inPlan)
			if err != nil {
				return built{}, err
			}
			col := indexOf(in.schema, ResultVar)
			if col < 0 {
				return built{}, fmt.Errorf("jobgen: union branch lacks %s", ResultVar)
			}
			proj := j.Add(hyracks.NewMap("union-project", in.par, func(tc *hyracks.TaskContext, t hyracks.Tuple, emit func(hyracks.Tuple) error) error {
				return emit(hyracks.Tuple{t[col]})
			}))
			j.MustConnect(in.op, proj, 0, hyracks.OneToOne())
			j.MustConnect(proj, union, port, hyracks.MergeUnordered())
		}
		return built{op: union, schema: []string{ResultVar}, par: 1}, nil

	case *LimitOp:
		in, err := g.buildOp(j, o.In)
		if err != nil {
			return built{}, err
		}
		limit := o.Limit
		offset := o.Offset
		if limit < 0 {
			limit = 1<<62 - 1
		}
		// Limit runs single-partition (after a merge when parallel).
		var upstream built = in
		if in.par > 1 {
			pass := j.Add(hyracks.NewMap("limit-merge", 1, func(tc *hyracks.TaskContext, t hyracks.Tuple, emit func(hyracks.Tuple) error) error {
				return emit(t)
			}))
			j.MustConnect(in.op, pass, 0, hyracks.MergeUnordered())
			upstream = built{op: pass, schema: in.schema, par: 1}
		}
		var seen int64
		op := j.Add(hyracks.NewMap("limit", 1, func(tc *hyracks.TaskContext, t hyracks.Tuple, emit func(hyracks.Tuple) error) error {
			seen++
			if seen <= offset {
				return nil
			}
			if seen > offset+limit {
				return nil
			}
			return emit(t)
		}))
		j.MustConnect(upstream.op, op, 0, hyracks.OneToOne())
		return built{op: op, schema: in.schema, par: 1, ordered: in.ordered}, nil
	}
	return built{}, fmt.Errorf("jobgen: unsupported operator %T", plan)
}

func (g *JobGen) buildJoin(j *hyracks.Job, o *JoinOp) (built, error) {
	l, err := g.buildOp(j, o.L)
	if err != nil {
		return built{}, err
	}
	r, err := g.buildOp(j, o.R)
	if err != nil {
		return built{}, err
	}
	outSchema := o.Schema()
	par := g.Parallelism

	if len(o.LeftKeys) > 0 {
		// Hash join on key columns.
		var lCols, rCols []int
		for i := range o.LeftKeys {
			lc := indexOf(l.schema, o.LeftKeys[i])
			rc := indexOf(r.schema, o.RightKeys[i])
			if lc < 0 || rc < 0 {
				return built{}, fmt.Errorf("jobgen: join key columns missing")
			}
			lCols = append(lCols, lc)
			rCols = append(rCols, rc)
		}
		kind := hyracks.InnerJoin
		switch o.Kind {
		case JoinLeftOuter:
			kind = hyracks.LeftOuterJoin
		case JoinSemi:
			kind = hyracks.LeftSemiJoin
		}
		// Residual ON conjuncts are checked per key-matching pair inside
		// the join, preserving outer/semi match semantics.
		var residual func(lt, rt hyracks.Tuple) (bool, error)
		if o.On != nil {
			lSchema, rSchema := l.schema, r.schema
			cond := o.On
			residual = func(lt, rt hyracks.Tuple) (bool, error) {
				env := NewEnv(nil, lSchema, lt)
				env = NewEnv(env, rSchema, rt)
				return g.Ev.truthyExpr(cond, env)
			}
		}
		join := j.Add(hyracks.NewHashJoin("hash-join", par, lCols, rCols, kind, len(r.schema), residual))
		j.MustConnect(l.op, join, 0, hyracks.HashPartition(lCols...))
		j.MustConnect(r.op, join, 1, hyracks.HashPartition(rCols...))
		_ = outSchema
		return built{op: join, schema: joinOutSchema(o, l.schema, r.schema), par: par}, nil
	}

	// Nested-loop join (cross product or non-equi condition).
	kind := hyracks.InnerJoin
	switch o.Kind {
	case JoinLeftOuter:
		kind = hyracks.LeftOuterJoin
	case JoinSemi:
		kind = hyracks.LeftSemiJoin
	}
	lSchema, rSchema := l.schema, r.schema
	cond := o.On
	pred := func(lt, rt hyracks.Tuple) (bool, error) {
		if cond == nil {
			return true, nil
		}
		env := NewEnv(nil, lSchema, lt)
		env = NewEnv(env, rSchema, rt)
		return g.Ev.truthyExpr(cond, env)
	}
	join := j.Add(hyracks.NewNestedLoopJoin("nl-join", l.par, pred, kind, len(r.schema)))
	j.MustConnect(l.op, join, 0, hyracks.OneToOne())
	j.MustConnect(r.op, join, 1, hyracks.Broadcast())
	return built{op: join, schema: joinOutSchema(o, l.schema, r.schema), par: l.par}, nil
}

func joinOutSchema(o *JoinOp, l, r []string) []string {
	if o.Kind == JoinSemi {
		return l
	}
	return append(append([]string{}, l...), r...)
}

func (g *JobGen) buildGroup(j *hyracks.Job, o *GroupOp) (built, error) {
	in, err := g.buildOp(j, o.In)
	if err != nil {
		return built{}, err
	}
	schema := in.schema
	nKeys := len(o.Keys)
	nAggs := len(o.Aggs)
	hasGroupAs := o.GroupAs != ""
	rowVars := o.RowVars
	// RowVars was captured at translate time; optimizer rules (join
	// reordering, projection pruning) may have changed the input column
	// order since, so resolve positions by name.
	rowCols := make([]int, len(rowVars))
	for i, name := range rowVars {
		rowCols[i] = indexOf(schema, name)
	}

	// Pre-compute: key columns, aggregate argument columns, and the
	// GROUP AS object column.
	keys := o.Keys
	aggs := o.Aggs
	prep := j.Add(hyracks.NewMap("group-prep", in.par, func(tc *hyracks.TaskContext, t hyracks.Tuple, emit func(hyracks.Tuple) error) error {
		env := envFor(schema, t)
		out := make(hyracks.Tuple, 0, nKeys+nAggs+1)
		for _, k := range keys {
			v, err := g.Ev.Eval(k.Expr, env)
			if err != nil {
				return err
			}
			out = append(out, v)
		}
		for _, a := range aggs {
			if a.Star {
				out = append(out, adm.Int64(1))
				continue
			}
			v, err := g.Ev.Eval(a.Arg, env)
			if err != nil {
				return err
			}
			out = append(out, v)
		}
		if hasGroupAs {
			obj := adm.NewObject()
			for i, name := range rowVars {
				if ci := rowCols[i]; ci >= 0 && ci < len(t) && t[ci].Kind() != adm.KindMissing {
					obj.Set(name, t[ci])
				}
			}
			out = append(out, obj)
		}
		return emit(out)
	}))
	j.MustConnect(in.op, prep, 0, hyracks.OneToOne())

	groupCols := make([]int, nKeys)
	for i := range groupCols {
		groupCols[i] = i
	}
	var specs []hyracks.AggSpec
	for i, a := range o.Aggs {
		col := nKeys + i
		spec, err := aggSpecFor(a, col)
		if err != nil {
			return built{}, err
		}
		specs = append(specs, spec)
	}
	if hasGroupAs {
		specs = append(specs, hyracks.CollectAgg(nKeys+nAggs))
	}

	par := g.Parallelism
	gb := j.Add(hyracks.NewGroupBy("group-by", parOrOne(nKeys, par), groupCols, specs))
	if nKeys > 0 {
		j.MustConnect(prep, gb, 0, hyracks.HashPartition(groupCols...))
	} else {
		j.MustConnect(prep, gb, 0, hyracks.MergeUnordered())
	}

	outOp := gb
	outPar := parOrOne(nKeys, par)
	// Global aggregation over empty input must still produce one row of
	// defaults (COUNT(*) = 0 over an empty dataset).
	if nKeys == 0 {
		defaults := make(hyracks.Tuple, 0, len(specs))
		for i, a := range o.Aggs {
			spec, _ := aggSpecFor(a, i)
			defaults = append(defaults, spec.Finish(spec.Init()))
		}
		if hasGroupAs {
			defaults = append(defaults, adm.Array{})
		}
		fill := j.Add(&hyracks.Operator{
			Name:        "global-agg-default",
			Parallelism: 1,
			New: func(int) hyracks.Runner {
				return hyracks.RunnerFunc(func(tc *hyracks.TaskContext, ins []*hyracks.Input, outs []*hyracks.Output) error {
					any := false
					err := ins[0].ForEach(func(t hyracks.Tuple) error {
						any = true
						return outs[0].Write(t)
					})
					if err != nil {
						return err
					}
					if !any {
						return outs[0].Write(defaults)
					}
					return nil
				})
			},
		})
		j.MustConnect(gb, fill, 0, hyracks.OneToOne())
		outOp = fill
		outPar = 1
	}
	return built{op: outOp, schema: o.Schema(), par: outPar}, nil
}

func parOrOne(nKeys, par int) int {
	if nKeys == 0 {
		return 1
	}
	return par
}

// aggSpecFor maps an extracted aggregate to a runtime spec over its
// argument column.
func aggSpecFor(a AggRef, col int) (hyracks.AggSpec, error) {
	if a.Distinct {
		// Collect then dedupe at finish (exact, memory-proportional to
		// group distinct cardinality).
		base := hyracks.CollectAgg(col)
		fn := a.Fn
		return hyracks.AggSpec{
			Name:  fn + "-distinct",
			Init:  base.Init,
			Step:  base.Step,
			Merge: base.Merge,
			Finish: func(s adm.Value) adm.Value {
				elems := dedupe([]adm.Value(s.(adm.Array)))
				v, err := foldAggregate(fn, elems)
				if err != nil {
					return adm.Null
				}
				return v
			},
		}, nil
	}
	switch a.Fn {
	case "count":
		if a.Star {
			return hyracks.CountAgg(-1), nil
		}
		return hyracks.CountAgg(col), nil
	case "sum":
		return hyracks.SumAgg(col), nil
	case "min":
		return hyracks.MinAgg(col), nil
	case "max":
		return hyracks.MaxAgg(col), nil
	case "avg":
		return hyracks.AvgAgg(col), nil
	case "array_agg":
		return hyracks.CollectAgg(col), nil
	}
	return hyracks.AggSpec{}, fmt.Errorf("jobgen: unsupported aggregate %q", a.Fn)
}
