package algebricks

import (
	"fmt"
	"strings"

	"asterix/internal/sqlpp"
)

// ExprKey renders an expression to a canonical string used for structural
// equality (matching SELECT expressions against GROUP BY keys).
func ExprKey(e sqlpp.Expr) string {
	var sb strings.Builder
	writeExprKey(&sb, e)
	return sb.String()
}

func writeExprKey(sb *strings.Builder, e sqlpp.Expr) {
	switch x := e.(type) {
	case *sqlpp.Literal:
		fmt.Fprintf(sb, "lit(%s)", x.Value.String())
	case *sqlpp.VarRef:
		fmt.Fprintf(sb, "var(%s)", x.Name)
	case *sqlpp.FieldAccess:
		sb.WriteString("field(")
		writeExprKey(sb, x.Base)
		fmt.Fprintf(sb, ",%s)", x.Field)
	case *sqlpp.IndexAccess:
		sb.WriteString("index(")
		writeExprKey(sb, x.Base)
		sb.WriteByte(',')
		writeExprKey(sb, x.Index)
		sb.WriteByte(')')
	case *sqlpp.Call:
		fmt.Fprintf(sb, "call(%s,%v", x.Fn, x.Distinct)
		for _, a := range x.Args {
			sb.WriteByte(',')
			writeExprKey(sb, a)
		}
		sb.WriteByte(')')
	case *sqlpp.Unary:
		fmt.Fprintf(sb, "un(%s,", x.Op)
		writeExprKey(sb, x.X)
		sb.WriteByte(')')
	case *sqlpp.Binary:
		fmt.Fprintf(sb, "bin(%s,", x.Op)
		writeExprKey(sb, x.L)
		sb.WriteByte(',')
		writeExprKey(sb, x.R)
		sb.WriteByte(')')
	case *sqlpp.IsExpr:
		fmt.Fprintf(sb, "is(%s,%v,", x.What, x.Negate)
		writeExprKey(sb, x.X)
		sb.WriteByte(')')
	case *sqlpp.Between:
		fmt.Fprintf(sb, "between(%v,", x.Negate)
		writeExprKey(sb, x.X)
		sb.WriteByte(',')
		writeExprKey(sb, x.Lo)
		sb.WriteByte(',')
		writeExprKey(sb, x.Hi)
		sb.WriteByte(')')
	case *sqlpp.InExpr:
		fmt.Fprintf(sb, "in(%v,", x.Negate)
		writeExprKey(sb, x.X)
		sb.WriteByte(',')
		writeExprKey(sb, x.Coll)
		sb.WriteByte(')')
	case *sqlpp.CaseExpr:
		sb.WriteString("case(")
		if x.Operand != nil {
			writeExprKey(sb, x.Operand)
		}
		for _, wt := range x.Whens {
			sb.WriteByte(';')
			writeExprKey(sb, wt.When)
			sb.WriteByte(':')
			writeExprKey(sb, wt.Then)
		}
		if x.Else != nil {
			sb.WriteString(";else:")
			writeExprKey(sb, x.Else)
		}
		sb.WriteByte(')')
	case *sqlpp.QuantifiedExpr:
		fmt.Fprintf(sb, "quant(%v,%s,", x.Some, x.Var)
		writeExprKey(sb, x.In)
		sb.WriteByte(',')
		writeExprKey(sb, x.Satisfies)
		sb.WriteByte(')')
	case *sqlpp.ExistsExpr:
		fmt.Fprintf(sb, "exists(%v,", x.Negate)
		writeExprKey(sb, x.X)
		sb.WriteByte(')')
	case *sqlpp.ObjectConstructor:
		sb.WriteString("obj(")
		for _, f := range x.Fields {
			writeExprKey(sb, f.Name)
			sb.WriteByte(':')
			writeExprKey(sb, f.Value)
			sb.WriteByte(';')
		}
		sb.WriteByte(')')
	case *sqlpp.ArrayConstructor:
		sb.WriteString("arr(")
		for _, el := range x.Elems {
			writeExprKey(sb, el)
			sb.WriteByte(';')
		}
		sb.WriteByte(')')
	case *sqlpp.MultisetConstructor:
		sb.WriteString("mset(")
		for _, el := range x.Elems {
			writeExprKey(sb, el)
			sb.WriteByte(';')
		}
		sb.WriteByte(')')
	case *sqlpp.SelectExpr:
		fmt.Fprintf(sb, "select(%p)", x) // nested blocks compare by identity
	default:
		fmt.Fprintf(sb, "?%T", e)
	}
}

// SubstituteByKey replaces any subexpression whose canonical key appears
// in repl with the mapped expression (outermost match wins); used to
// rewrite group-key expressions to their key variables after grouping.
func SubstituteByKey(e sqlpp.Expr, repl map[string]sqlpp.Expr) sqlpp.Expr {
	if r, ok := repl[ExprKey(e)]; ok {
		return r
	}
	switch x := e.(type) {
	case *sqlpp.FieldAccess:
		return &sqlpp.FieldAccess{Base: SubstituteByKey(x.Base, repl), Field: x.Field}
	case *sqlpp.IndexAccess:
		return &sqlpp.IndexAccess{Base: SubstituteByKey(x.Base, repl), Index: SubstituteByKey(x.Index, repl)}
	case *sqlpp.Call:
		out := &sqlpp.Call{Fn: x.Fn, Distinct: x.Distinct}
		for _, a := range x.Args {
			out.Args = append(out.Args, SubstituteByKey(a, repl))
		}
		return out
	case *sqlpp.Unary:
		return &sqlpp.Unary{Op: x.Op, X: SubstituteByKey(x.X, repl)}
	case *sqlpp.Binary:
		return &sqlpp.Binary{Op: x.Op, L: SubstituteByKey(x.L, repl), R: SubstituteByKey(x.R, repl)}
	case *sqlpp.IsExpr:
		return &sqlpp.IsExpr{X: SubstituteByKey(x.X, repl), What: x.What, Negate: x.Negate}
	case *sqlpp.Between:
		return &sqlpp.Between{X: SubstituteByKey(x.X, repl), Lo: SubstituteByKey(x.Lo, repl), Hi: SubstituteByKey(x.Hi, repl), Negate: x.Negate}
	case *sqlpp.InExpr:
		return &sqlpp.InExpr{X: SubstituteByKey(x.X, repl), Coll: SubstituteByKey(x.Coll, repl), Negate: x.Negate}
	case *sqlpp.CaseExpr:
		out := &sqlpp.CaseExpr{}
		if x.Operand != nil {
			out.Operand = SubstituteByKey(x.Operand, repl)
		}
		for _, wt := range x.Whens {
			out.Whens = append(out.Whens, sqlpp.WhenThen{
				When: SubstituteByKey(wt.When, repl),
				Then: SubstituteByKey(wt.Then, repl),
			})
		}
		if x.Else != nil {
			out.Else = SubstituteByKey(x.Else, repl)
		}
		return out
	case *sqlpp.ObjectConstructor:
		out := &sqlpp.ObjectConstructor{}
		for _, f := range x.Fields {
			out.Fields = append(out.Fields, sqlpp.ObjectField{
				Name:  SubstituteByKey(f.Name, repl),
				Value: SubstituteByKey(f.Value, repl),
			})
		}
		return out
	case *sqlpp.ArrayConstructor:
		out := &sqlpp.ArrayConstructor{}
		for _, el := range x.Elems {
			out.Elems = append(out.Elems, SubstituteByKey(el, repl))
		}
		return out
	case *sqlpp.MultisetConstructor:
		out := &sqlpp.MultisetConstructor{}
		for _, el := range x.Elems {
			out.Elems = append(out.Elems, SubstituteByKey(el, repl))
		}
		return out
	default:
		return e
	}
}

// groupKeyRewrites builds the substitution map key-expr → key-var for a
// grouped block.
func groupKeyRewrites(sel *sqlpp.SelectExpr) map[string]sqlpp.Expr {
	repl := map[string]sqlpp.Expr{}
	for _, gk := range sel.GroupBy {
		repl[ExprKey(gk.Expr)] = &sqlpp.VarRef{Name: gk.Alias}
	}
	return repl
}
