package algebricks

import (
	"encoding/json"
	"fmt"
	"strings"

	"asterix/internal/sqlpp"
)

// ExprString renders an expression in compact SQL-ish form for plan text
// (EXPLAIN output and golden plan tests). It is stable: the same
// expression always renders the same way.
func ExprString(e sqlpp.Expr) string {
	var sb strings.Builder
	writeExprString(&sb, e)
	return sb.String()
}

func writeExprString(sb *strings.Builder, e sqlpp.Expr) {
	switch x := e.(type) {
	case nil:
		sb.WriteString("true")
	case *sqlpp.Literal:
		sb.WriteString(x.Value.String())
	case *sqlpp.VarRef:
		sb.WriteString(x.Name)
	case *sqlpp.FieldAccess:
		writeExprString(sb, x.Base)
		sb.WriteByte('.')
		sb.WriteString(x.Field)
	case *sqlpp.IndexAccess:
		writeExprString(sb, x.Base)
		sb.WriteByte('[')
		writeExprString(sb, x.Index)
		sb.WriteByte(']')
	case *sqlpp.Call:
		sb.WriteString(x.Fn)
		sb.WriteByte('(')
		if x.Distinct {
			sb.WriteString("distinct ")
		}
		for i, a := range x.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExprString(sb, a)
		}
		sb.WriteByte(')')
	case *sqlpp.Unary:
		sb.WriteString(x.Op)
		sb.WriteByte(' ')
		writeExprString(sb, x.X)
	case *sqlpp.Binary:
		sb.WriteByte('(')
		writeExprString(sb, x.L)
		sb.WriteByte(' ')
		sb.WriteString(x.Op)
		sb.WriteByte(' ')
		writeExprString(sb, x.R)
		sb.WriteByte(')')
	case *sqlpp.IsExpr:
		sb.WriteByte('(')
		writeExprString(sb, x.X)
		sb.WriteString(" is ")
		if x.Negate {
			sb.WriteString("not ")
		}
		sb.WriteString(x.What)
		sb.WriteByte(')')
	case *sqlpp.Between:
		sb.WriteByte('(')
		writeExprString(sb, x.X)
		if x.Negate {
			sb.WriteString(" not")
		}
		sb.WriteString(" between ")
		writeExprString(sb, x.Lo)
		sb.WriteString(" and ")
		writeExprString(sb, x.Hi)
		sb.WriteByte(')')
	case *sqlpp.InExpr:
		sb.WriteByte('(')
		writeExprString(sb, x.X)
		if x.Negate {
			sb.WriteString(" not")
		}
		sb.WriteString(" in ")
		writeExprString(sb, x.Coll)
		sb.WriteByte(')')
	case *sqlpp.CaseExpr:
		sb.WriteString("case")
		if x.Operand != nil {
			sb.WriteByte(' ')
			writeExprString(sb, x.Operand)
		}
		for _, wt := range x.Whens {
			sb.WriteString(" when ")
			writeExprString(sb, wt.When)
			sb.WriteString(" then ")
			writeExprString(sb, wt.Then)
		}
		if x.Else != nil {
			sb.WriteString(" else ")
			writeExprString(sb, x.Else)
		}
		sb.WriteString(" end")
	case *sqlpp.QuantifiedExpr:
		if x.Some {
			sb.WriteString("some ")
		} else {
			sb.WriteString("every ")
		}
		sb.WriteString(x.Var)
		sb.WriteString(" in ")
		writeExprString(sb, x.In)
		sb.WriteString(" satisfies ")
		writeExprString(sb, x.Satisfies)
	case *sqlpp.ExistsExpr:
		if x.Negate {
			sb.WriteString("not ")
		}
		sb.WriteString("exists ")
		writeExprString(sb, x.X)
	case *sqlpp.ObjectConstructor:
		sb.WriteByte('{')
		for i, f := range x.Fields {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExprString(sb, f.Name)
			sb.WriteString(": ")
			writeExprString(sb, f.Value)
		}
		sb.WriteByte('}')
	case *sqlpp.ArrayConstructor:
		sb.WriteByte('[')
		for i, el := range x.Elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExprString(sb, el)
		}
		sb.WriteByte(']')
	case *sqlpp.MultisetConstructor:
		sb.WriteString("{{")
		for i, el := range x.Elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExprString(sb, el)
		}
		sb.WriteString("}}")
	case *sqlpp.SelectExpr:
		sb.WriteString("(subquery)")
	case *sqlpp.UnionExpr:
		sb.WriteString("(union)")
	default:
		fmt.Fprintf(sb, "?%T", e)
	}
}

// PlanNode is the JSON form of one plan operator, exposed through EXPLAIN
// and "profile":"plan".
type PlanNode struct {
	Op      string      `json:"op"`
	Detail  string      `json:"detail,omitempty"`
	Columns []string    `json:"columns,omitempty"`
	Inputs  []*PlanNode `json:"inputs,omitempty"`
}

// opKind returns a stable one-token name for the operator type.
func opKind(op Op) string {
	switch op.(type) {
	case *EtsOp:
		return "ets"
	case *ScanOp:
		return "scan"
	case *IndexSearchOp:
		return "index-search"
	case *SelectOp:
		return "select"
	case *AssignOp:
		return "assign"
	case *UnnestOp:
		return "unnest"
	case *ProjectOp:
		return "project"
	case *JoinOp:
		return "join"
	case *GroupOp:
		return "group-by"
	case *ResultOp:
		return "result"
	case *DistinctOp:
		return "distinct"
	case *OrderOp:
		return "order"
	case *LimitOp:
		return "limit"
	case *UnionAllOp:
		return "union-all"
	}
	return fmt.Sprintf("%T", op)
}

// PlanTree converts a plan to its JSON-ready node form.
func PlanTree(op Op) *PlanNode {
	n := &PlanNode{
		Op:      opKind(op),
		Detail:  op.String(),
		Columns: append([]string{}, op.Schema()...),
	}
	for _, in := range op.Inputs() {
		n.Inputs = append(n.Inputs, PlanTree(in))
	}
	return n
}

// PlanJSON renders a plan as a stable JSON tree.
func PlanJSON(op Op) string {
	b, err := json.Marshal(PlanTree(op))
	if err != nil {
		return `{"op":"error"}`
	}
	return string(b)
}
