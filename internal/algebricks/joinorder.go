package algebricks

import (
	"asterix/internal/sqlpp"
)

// Statistics-free greedy join ordering. An N-way (N >= 3) cluster of
// inner, unkeyed joins — plus the filter directly above it, if any — is
// flattened into leaf relations and predicates, then rebuilt left-deep:
// start from the leaf with the strongest local filters, then repeatedly
// append the leaf with the best connection to what is already joined.
// Candidates are scored by predicate selectivity class (equality beats
// range beats anything else), so equi-connected relations join early and
// cross products sink to the end. No cardinality statistics are consulted:
// connectivity plus selectivity classes is enough to avoid the
// pathological orders, at planning cost linear in N per greedy step.

// predClass ranks a predicate's expected selectivity: equality (3) >
// range (2) > anything else (1).
func predClass(e sqlpp.Expr) int {
	switch x := e.(type) {
	case *sqlpp.Binary:
		switch x.Op {
		case "=":
			return 3
		case "<", "<=", ">", ">=":
			return 2
		}
	case *sqlpp.Between:
		return 2
	}
	return 1
}

// localScore estimates how constrained a leaf subtree already is: residual
// filters score by class, and an index search is the strongest signal.
func localScore(op Op) int {
	score := 0
	var walk func(Op)
	walk = func(o Op) {
		switch x := o.(type) {
		case *SelectOp:
			for _, c := range conjuncts(x.Cond) {
				score += predClass(c)
			}
		case *IndexSearchOp:
			score += 4
		}
		for _, in := range o.Inputs() {
			walk(in)
		}
	}
	walk(op)
	return score
}

// eligibleClusterJoin reports whether j can be flattened into a reorder
// cluster: inner, no hash keys extracted yet.
func eligibleClusterJoin(j *JoinOp) bool {
	return j.Kind == JoinInner && len(j.LeftKeys) == 0
}

// flattenJoinCluster collects the leaves and join predicates of the
// maximal cluster rooted at op, noting whether any member join is still
// unordered. Filters sitting between member joins (left there by select
// pushthrough) are absorbed into the predicate pool and redistributed by
// the rebuild.
func flattenJoinCluster(op Op, leaves *[]Op, preds *[]sqlpp.Expr, anyUnordered *bool) {
	if s, ok := op.(*SelectOp); ok {
		if j, ok := s.In.(*JoinOp); ok && eligibleClusterJoin(j) {
			*preds = append(*preds, conjuncts(s.Cond)...)
			flattenJoinCluster(j, leaves, preds, anyUnordered)
			return
		}
	}
	if j, ok := op.(*JoinOp); ok && eligibleClusterJoin(j) {
		if !j.ordered {
			*anyUnordered = true
		}
		if j.On != nil {
			*preds = append(*preds, conjuncts(j.On)...)
		}
		flattenJoinCluster(j.L, leaves, preds, anyUnordered)
		flattenJoinCluster(j.R, leaves, preds, anyUnordered)
		return
	}
	*leaves = append(*leaves, op)
}

// ruleOrderJoinsGreedily finds clusters of three or more inner-join leaves
// and rebuilds them left-deep in greedy order. Rebuilt joins are marked
// ordered so each cluster is restructured at most once.
func ruleOrderJoinsGreedily(tr *Translator, plan Op) (Op, int) {
	hits := 0
	var walk func(Op) Op
	walk = func(op Op) Op {
		switch o := op.(type) {
		case *SelectOp:
			if j, ok := o.In.(*JoinOp); ok && eligibleClusterJoin(j) {
				if out, changed := tr.orderCluster(o, j); changed {
					hits++
					op = out
				}
			}
		case *JoinOp:
			if eligibleClusterJoin(o) {
				if out, changed := tr.orderCluster(nil, o); changed {
					hits++
					op = out
				}
			}
		}
		for i, in := range op.Inputs() {
			nin := walk(in)
			if nin != in {
				setInput(op, i, nin)
			}
		}
		return op
	}
	return walk(plan), hits
}

// orderCluster flattens the cluster rooted at j (consuming the filter sel
// directly above it, when given) and rebuilds it left-deep in greedy
// order. Returns (replacement, true) when it fired.
func (tr *Translator) orderCluster(sel *SelectOp, j *JoinOp) (Op, bool) {
	var leaves []Op
	var preds []sqlpp.Expr
	anyUnordered := false
	flattenJoinCluster(j, &leaves, &preds, &anyUnordered)
	if len(leaves) < 3 || !anyUnordered {
		return nil, false
	}
	if sel != nil {
		preds = append(preds, conjuncts(sel.Cond)...)
	}

	// Which leaves does each predicate touch?
	leafVars := make([]map[string]bool, len(leaves))
	for i, lf := range leaves {
		leafVars[i] = map[string]bool{}
		for _, v := range lf.Schema() {
			leafVars[i][v] = true
		}
	}
	type joinPred struct {
		e       sqlpp.Expr
		touched []int
		class   int
	}
	var joinPreds []joinPred
	local := make([][]sqlpp.Expr, len(leaves))
	var leftovers []sqlpp.Expr
	for _, p := range preds {
		free := map[string]bool{}
		FreeVars(p, free)
		var touched []int
		for i := range leaves {
			for v := range free {
				if leafVars[i][v] {
					touched = append(touched, i)
					break
				}
			}
		}
		switch len(touched) {
		case 0:
			leftovers = append(leftovers, p)
		case 1:
			local[touched[0]] = append(local[touched[0]], p)
		default:
			joinPreds = append(joinPreds, joinPred{e: p, touched: touched, class: predClass(p)})
		}
	}

	// Local selectivity per leaf: filters being distributed now plus
	// whatever already sits inside the subtree.
	locScore := make([]int, len(leaves))
	for i, lf := range leaves {
		locScore[i] = localScore(lf)
		for _, p := range local[i] {
			locScore[i] += predClass(p)
		}
	}

	// Greedy: start at the most locally constrained leaf, then repeatedly
	// take the leaf with the strongest connection to the joined set
	// (connection class sum, then local score, then original position for
	// determinism).
	chosen := make([]bool, len(leaves))
	order := make([]int, 0, len(leaves))
	start := 0
	for i := 1; i < len(leaves); i++ {
		if locScore[i] > locScore[start] {
			start = i
		}
	}
	order = append(order, start)
	chosen[start] = true
	for len(order) < len(leaves) {
		best, bestConn, bestLoc := -1, -1, -1
		for i := range leaves {
			if chosen[i] {
				continue
			}
			conn := 0
			for _, jp := range joinPreds {
				// The predicate connects i to the joined set when every
				// leaf it touches is either i or already joined.
				touchesI, allIn := false, true
				for _, t := range jp.touched {
					if t == i {
						touchesI = true
					} else if !chosen[t] {
						allIn = false
					}
				}
				if touchesI && allIn {
					conn += jp.class
				}
			}
			if conn > bestConn || (conn == bestConn && locScore[i] > bestLoc) {
				best, bestConn, bestLoc = i, conn, locScore[i]
			}
		}
		order = append(order, best)
		chosen[best] = true
	}

	// Rebuild left-deep, attaching each join predicate at the first join
	// that binds all its variables and local filters directly on their
	// leaf.
	wrapLocal := func(i int) Op {
		lf := leaves[i]
		if len(local[i]) > 0 {
			return &SelectOp{In: lf, Cond: conjoin(local[i])}
		}
		return lf
	}
	used := make([]bool, len(joinPreds))
	cur := wrapLocal(order[0])
	curLeaves := map[int]bool{order[0]: true}
	for _, li := range order[1:] {
		curLeaves[li] = true
		var on []sqlpp.Expr
		for k, jp := range joinPreds {
			if used[k] {
				continue
			}
			all := true
			for _, t := range jp.touched {
				if !curLeaves[t] {
					all = false
					break
				}
			}
			if all {
				on = append(on, jp.e)
				used[k] = true
			}
		}
		cur = &JoinOp{L: cur, R: wrapLocal(li), Kind: JoinInner, On: conjoin(on), ordered: true}
	}
	if len(leftovers) > 0 {
		cur = &SelectOp{In: cur, Cond: conjoin(leftovers)}
	}
	return cur, true
}
