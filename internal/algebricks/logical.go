package algebricks

import (
	"fmt"
	"strings"

	"asterix/internal/adm"
	"asterix/internal/sqlpp"
)

// Op is a logical operator. Each op produces tuples whose columns are
// named variables (Schema).
type Op interface {
	Schema() []string
	Inputs() []Op
	String() string
}

// EtsOp is the empty-tuple source: one tuple, no columns (the leaf under
// constant FROM terms).
type EtsOp struct{}

// ScanOp is a full dataset scan binding each record to Var.
type ScanOp struct {
	Dataset string
	Var     string
	// MaxTuples caps the number of tuples each partition emits (0 = no
	// cap), set by the limit-pushdown rule.
	MaxTuples int64
}

// IndexKind names the access paths an IndexSearchOp can use.
type IndexKind string

// IndexSearchOp replaces Scan+Select when a sargable predicate matches a
// secondary index: search the index, fetch qualifying records (pk-sorted,
// per [26]), and re-check the residual predicate.
type IndexSearchOp struct {
	Dataset string
	Var     string
	Field   string
	Kind    string // BTREE, RTREE, KEYWORD, ...

	// BTREE bounds (constant expressions; nil = unbounded).
	Lo, Hi       sqlpp.Expr
	LoInc, HiInc bool
	// RTREE query rectangle (constant expression).
	Rect sqlpp.Expr
	// KEYWORD token (constant expression).
	Token sqlpp.Expr
	// MaxTuples caps the number of tuples each partition emits (0 = no
	// cap), set by the limit-pushdown rule.
	MaxTuples int64
}

// SelectOp filters tuples by a predicate.
type SelectOp struct {
	In   Op
	Cond sqlpp.Expr
}

// AssignOp appends a computed column.
type AssignOp struct {
	In   Op
	Var  string
	Expr sqlpp.Expr
}

// UnnestOp appends a column iterating a (possibly correlated) collection
// expression; tuples whose collection is empty or non-collection are
// dropped (or padded with missing when Outer).
type UnnestOp struct {
	In    Op
	Var   string
	Expr  sqlpp.Expr
	Outer bool
}

// JoinKind for logical joins.
type JoinKind int

// Logical join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeftOuter
	JoinSemi
)

// JoinOp joins two independent subplans. After rule application, equi
// joins carry key variable lists (columns appended by assigns beneath).
type JoinOp struct {
	L, R Op
	Kind JoinKind
	On   sqlpp.Expr // nil = cross product
	// Hash-join keys (variable names present in L/R schemas), set by the
	// join-recognition rule.
	LeftKeys, RightKeys []string
	// ordered marks joins already placed by the greedy join-ordering rule
	// so the rule does not restructure the same cluster twice.
	ordered bool
}

// ProjectOp narrows the tuple to the named columns (in the given order),
// inserted by the column-pruning rule.
type ProjectOp struct {
	In   Op
	Cols []string
}

// GroupKeyDef is one grouping key.
type GroupKeyDef struct {
	Var  string
	Expr sqlpp.Expr
}

// GroupOp groups by keys, computing extracted aggregates and optionally a
// GROUP AS collection of the input row variables. Output schema: key vars,
// aggregate vars, then GroupAs (if any).
type GroupOp struct {
	In      Op
	Keys    []GroupKeyDef
	Aggs    []AggRef
	GroupAs string
	RowVars []string // input schema captured for GROUP AS
}

// ResultOp appends the final projection value as column "$result".
type ResultOp struct {
	In   Op
	Expr sqlpp.Expr
}

// DistinctOp removes duplicate $result values.
type DistinctOp struct{ In Op }

// OrderDef is one sort item.
type OrderDef struct {
	Expr sqlpp.Expr
	Desc bool
}

// OrderOp sorts tuples.
type OrderOp struct {
	In    Op
	Items []OrderDef
}

// LimitOp applies limit/offset (constants; -1 = none).
type LimitOp struct {
	In            Op
	Limit, Offset int64
}

// UnionAllOp concatenates the $result streams of its inputs (bag union).
type UnionAllOp struct{ Ins []Op }

// Schema implements Op.
func (o *UnionAllOp) Schema() []string { return []string{ResultVar} }

// Inputs implements Op.
func (o *UnionAllOp) Inputs() []Op { return o.Ins }
func (o *UnionAllOp) String() string {
	return fmt.Sprintf("union-all(%d)", len(o.Ins))
}

// ResultVar is the column name of the projected result value.
const ResultVar = "$result"

func (*EtsOp) Schema() []string    { return nil }
func (*EtsOp) Inputs() []Op        { return nil }
func (o *EtsOp) String() string    { return "ets" }
func (o *ScanOp) Schema() []string { return []string{o.Var} }
func (o *ScanOp) Inputs() []Op     { return nil }
func (o *ScanOp) String() string {
	s := fmt.Sprintf("scan(%s as %s)", o.Dataset, o.Var)
	if o.MaxTuples > 0 {
		s += fmt.Sprintf(" limit=%d", o.MaxTuples)
	}
	return s
}

func (o *IndexSearchOp) Schema() []string { return []string{o.Var} }
func (o *IndexSearchOp) Inputs() []Op     { return nil }
func (o *IndexSearchOp) String() string {
	s := fmt.Sprintf("index-search(%s.%s %s as %s)", o.Dataset, o.Field, o.Kind, o.Var)
	if o.Lo != nil || o.Hi != nil {
		lo, hi := "-inf", "+inf"
		lb, hb := "(", ")"
		if o.Lo != nil {
			lo = ExprString(o.Lo)
			if o.LoInc {
				lb = "["
			}
		}
		if o.Hi != nil {
			hi = ExprString(o.Hi)
			if o.HiInc {
				hb = "]"
			}
		}
		s += fmt.Sprintf(" range=%s%s..%s%s", lb, lo, hi, hb)
	}
	if o.Rect != nil {
		s += " rect=" + ExprString(o.Rect)
	}
	if o.Token != nil {
		s += " token=" + ExprString(o.Token)
	}
	if o.MaxTuples > 0 {
		s += fmt.Sprintf(" limit=%d", o.MaxTuples)
	}
	return s
}

func (o *SelectOp) Schema() []string { return o.In.Schema() }
func (o *SelectOp) Inputs() []Op     { return []Op{o.In} }
func (o *SelectOp) String() string   { return "select " + ExprString(o.Cond) }

func (o *AssignOp) Schema() []string { return append(append([]string{}, o.In.Schema()...), o.Var) }
func (o *AssignOp) Inputs() []Op     { return []Op{o.In} }
func (o *AssignOp) String() string   { return "assign " + o.Var + " := " + ExprString(o.Expr) }

func (o *UnnestOp) Schema() []string { return append(append([]string{}, o.In.Schema()...), o.Var) }
func (o *UnnestOp) Inputs() []Op     { return []Op{o.In} }
func (o *UnnestOp) String() string {
	kind := "unnest"
	if o.Outer {
		kind = "outer-unnest"
	}
	return kind + " " + o.Var + " := " + ExprString(o.Expr)
}

func (o *ProjectOp) Schema() []string { return append([]string{}, o.Cols...) }
func (o *ProjectOp) Inputs() []Op     { return []Op{o.In} }
func (o *ProjectOp) String() string   { return "project [" + strings.Join(o.Cols, ", ") + "]" }

func (o *JoinOp) Schema() []string {
	if o.Kind == JoinSemi {
		return o.L.Schema()
	}
	return append(append([]string{}, o.L.Schema()...), o.R.Schema()...)
}
func (o *JoinOp) Inputs() []Op { return []Op{o.L, o.R} }
func (o *JoinOp) String() string {
	kinds := map[JoinKind]string{JoinInner: "inner", JoinLeftOuter: "left-outer", JoinSemi: "semi"}
	how := "nested-loop"
	if len(o.LeftKeys) > 0 {
		how = "hash"
	}
	s := fmt.Sprintf("join[%s,%s]", kinds[o.Kind], how)
	if len(o.LeftKeys) > 0 {
		pairs := make([]string, len(o.LeftKeys))
		for i := range o.LeftKeys {
			pairs[i] = o.LeftKeys[i] + "=" + o.RightKeys[i]
		}
		s += " keys=[" + strings.Join(pairs, ", ") + "]"
	}
	if o.On != nil {
		s += " on=" + ExprString(o.On)
	}
	return s
}

func (o *GroupOp) Schema() []string {
	var s []string
	for _, k := range o.Keys {
		s = append(s, k.Var)
	}
	for _, a := range o.Aggs {
		s = append(s, a.Var)
	}
	if o.GroupAs != "" {
		s = append(s, o.GroupAs)
	}
	return s
}
func (o *GroupOp) Inputs() []Op { return []Op{o.In} }
func (o *GroupOp) String() string {
	var parts []string
	for _, k := range o.Keys {
		parts = append(parts, k.Var+":="+ExprString(k.Expr))
	}
	for _, a := range o.Aggs {
		arg := "*"
		if !a.Star {
			arg = ExprString(a.Arg)
		}
		parts = append(parts, fmt.Sprintf("%s:=%s(%s)", a.Var, a.Fn, arg))
	}
	s := fmt.Sprintf("group-by(%d keys, %d aggs)", len(o.Keys), len(o.Aggs))
	if len(parts) > 0 {
		s += " [" + strings.Join(parts, ", ") + "]"
	}
	if o.GroupAs != "" {
		s += " as " + o.GroupAs
	}
	return s
}

func (o *ResultOp) Schema() []string { return append(append([]string{}, o.In.Schema()...), ResultVar) }
func (o *ResultOp) Inputs() []Op     { return []Op{o.In} }
func (o *ResultOp) String() string   { return "result " + ExprString(o.Expr) }

func (o *DistinctOp) Schema() []string { return []string{ResultVar} }
func (o *DistinctOp) Inputs() []Op     { return []Op{o.In} }
func (o *DistinctOp) String() string   { return "distinct" }

func (o *OrderOp) Schema() []string { return o.In.Schema() }
func (o *OrderOp) Inputs() []Op     { return []Op{o.In} }
func (o *OrderOp) String() string {
	items := make([]string, len(o.Items))
	for i, it := range o.Items {
		items[i] = ExprString(it.Expr)
		if it.Desc {
			items[i] += " desc"
		}
	}
	return fmt.Sprintf("order(%s)", strings.Join(items, ", "))
}

func (o *LimitOp) Schema() []string { return o.In.Schema() }
func (o *LimitOp) Inputs() []Op     { return []Op{o.In} }
func (o *LimitOp) String() string   { return fmt.Sprintf("limit(%d,%d)", o.Limit, o.Offset) }

// PlanString renders a plan tree for tests and EXPLAIN.
func PlanString(op Op) string {
	var sb strings.Builder
	var walk func(Op, int)
	walk = func(o Op, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(o.String())
		sb.WriteByte('\n')
		for _, in := range o.Inputs() {
			walk(in, depth+1)
		}
	}
	walk(op, 0)
	return sb.String()
}

// Translator lowers the AST to a logical plan.
type Translator struct {
	Ev      *Evaluator
	Catalog Catalog
	varGen  int
	// LastOpt is the report of the most recent Optimize run on this
	// translator (one translator serves one statement).
	LastOpt OptReport
}

func (tr *Translator) freshVar(prefix string) string {
	tr.varGen++
	return fmt.Sprintf("$%s%d", prefix, tr.varGen)
}

// TranslateQuery lowers a top-level query body: a SELECT block or a
// UNION ALL chain of them.
func (tr *Translator) TranslateQuery(body sqlpp.Expr) (Op, error) {
	switch x := body.(type) {
	case *sqlpp.SelectExpr:
		return tr.Translate(x)
	case *sqlpp.UnionExpr:
		u := &UnionAllOp{}
		for _, b := range x.Blocks {
			sel, ok := b.(*sqlpp.SelectExpr)
			if !ok {
				return nil, fmt.Errorf("UNION ALL branches must be SELECT blocks")
			}
			in, err := tr.Translate(sel)
			if err != nil {
				return nil, err
			}
			u.Ins = append(u.Ins, in)
		}
		return u, nil
	}
	return nil, fmt.Errorf("unsupported query body %T", body)
}

// Translate lowers a top-level SELECT block.
func (tr *Translator) Translate(sel *sqlpp.SelectExpr) (Op, error) {
	var plan Op = &EtsOp{}

	// WITH bindings evaluate once per statement (constant w.r.t. the
	// data being scanned).
	baseEnv := NewEnv(nil, nil, nil)
	for _, w := range sel.With {
		v, err := tr.Ev.Eval(w.Expr, baseEnv)
		if err != nil {
			return nil, fmt.Errorf("WITH %s: %w", w.Var, err)
		}
		baseEnv.Bind(w.Var, v)
		plan = &AssignOp{In: plan, Var: w.Var, Expr: &sqlpp.Literal{Value: v}}
	}

	for i, ft := range sel.From {
		var err error
		plan, err = tr.addFromTerm(plan, ft, i == 0 && len(sel.With) == 0)
		if err != nil {
			return nil, err
		}
	}
	if len(sel.From) == 0 {
		// Expression-only query: SELECT VALUE 1+1.
	}

	for _, lc := range sel.Lets {
		plan = &AssignOp{In: plan, Var: lc.Var, Expr: lc.Expr}
	}
	if sel.Where != nil {
		plan = &SelectOp{In: plan, Cond: sel.Where}
	}

	// Grouping with shared aggregate numbering (mirrors the interpreter).
	implicitAgg := len(sel.GroupBy) == 0 && tr.Ev.selectHasAggregates(sel)
	grouping := len(sel.GroupBy) > 0 || implicitAgg

	aliasMap := map[string]sqlpp.Expr{}
	for _, item := range sel.Select.Items {
		if item.Alias != "" {
			aliasMap[item.Alias] = item.Expr
		}
	}
	projExpr := tr.projectionFor(sel, plan)
	havingExpr := sel.Having
	orderExprs := make([]sqlpp.Expr, len(sel.OrderBy))
	for i, oi := range sel.OrderBy {
		orderExprs[i] = SubstituteVars(oi.Expr, aliasMap)
	}
	if grouping {
		gen := 0
		var aggs []AggRef
		repl := groupKeyRewrites(sel)
		projExpr = SubstituteByKey(ExtractAggregates(projExpr, &gen, &aggs), repl)
		if havingExpr != nil {
			havingExpr = SubstituteByKey(ExtractAggregates(havingExpr, &gen, &aggs), repl)
		}
		for i := range orderExprs {
			orderExprs[i] = SubstituteByKey(ExtractAggregates(orderExprs[i], &gen, &aggs), repl)
		}
		// Dead GROUP AS elimination: materializing each group's rows is
		// expensive; skip it when no post-group expression reads the
		// binding (AQL's with-variables often compile this way).
		groupAs := sel.GroupAs
		if groupAs != "" {
			used := map[string]bool{}
			FreeVars(projExpr, used)
			if havingExpr != nil {
				FreeVars(havingExpr, used)
			}
			for _, oe := range orderExprs {
				FreeVars(oe, used)
			}
			for _, a := range aggs {
				if a.Arg != nil {
					FreeVars(a.Arg, used)
				}
			}
			if !used[groupAs] {
				groupAs = ""
			}
		}
		g := &GroupOp{In: plan, Aggs: aggs, GroupAs: groupAs, RowVars: plan.Schema()}
		for _, gk := range sel.GroupBy {
			g.Keys = append(g.Keys, GroupKeyDef{Var: gk.Alias, Expr: gk.Expr})
		}
		plan = g
	}
	if havingExpr != nil {
		plan = &SelectOp{In: plan, Cond: havingExpr}
	}

	plan = &ResultOp{In: plan, Expr: projExpr}

	if sel.Select.Distinct {
		plan = &DistinctOp{In: plan}
		// Order expressions after DISTINCT can only see the result value.
		for i := range orderExprs {
			orderExprs[i] = rebaseOnResult(orderExprs[i], aliasMap)
		}
	}
	if len(orderExprs) > 0 {
		o := &OrderOp{In: plan}
		for i, oe := range orderExprs {
			o.Items = append(o.Items, OrderDef{Expr: oe, Desc: sel.OrderBy[i].Desc})
		}
		plan = o
	}
	if sel.Limit != nil || sel.Offset != nil {
		limit, offset := int64(-1), int64(0)
		if sel.Limit != nil {
			v, err := tr.Ev.Eval(sel.Limit, baseEnv)
			if err != nil {
				return nil, err
			}
			n, ok := adm.AsInt(v)
			if !ok || n < 0 {
				return nil, fmt.Errorf("LIMIT must be a non-negative integer")
			}
			limit = n
		}
		if sel.Offset != nil {
			v, err := tr.Ev.Eval(sel.Offset, baseEnv)
			if err != nil {
				return nil, err
			}
			n, ok := adm.AsInt(v)
			if !ok || n < 0 {
				return nil, fmt.Errorf("OFFSET must be a non-negative integer")
			}
			offset = n
		}
		plan = &LimitOp{In: plan, Limit: limit, Offset: offset}
	}
	return plan, nil
}

// projectionFor builds the final projection expression; SELECT * expands
// over the current schema's user-visible variables.
func (tr *Translator) projectionFor(sel *sqlpp.SelectExpr, plan Op) sqlpp.Expr {
	if sel.Select.Value != nil {
		return sel.Select.Value
	}
	obj := &sqlpp.ObjectConstructor{}
	if sel.Select.Star {
		vars := plan.Schema()
		if len(sel.GroupBy) > 0 {
			vars = nil
			for _, gk := range sel.GroupBy {
				vars = append(vars, gk.Alias)
			}
			if sel.GroupAs != "" {
				vars = append(vars, sel.GroupAs)
			}
		}
		for _, v := range vars {
			if strings.HasPrefix(v, "$") {
				continue
			}
			obj.Fields = append(obj.Fields, sqlpp.ObjectField{
				Name:  &sqlpp.Literal{Value: adm.String(v)},
				Value: &sqlpp.VarRef{Name: v},
			})
		}
		return obj
	}
	for _, it := range sel.Select.Items {
		obj.Fields = append(obj.Fields, sqlpp.ObjectField{
			Name:  &sqlpp.Literal{Value: adm.String(it.Alias)},
			Value: it.Expr,
		})
	}
	return obj
}

// rebaseOnResult rewrites an ORDER BY expression used above DISTINCT to
// access fields of the projected result.
func rebaseOnResult(e sqlpp.Expr, aliasMap map[string]sqlpp.Expr) sqlpp.Expr {
	mapping := map[string]sqlpp.Expr{}
	for alias := range aliasMap {
		mapping[alias] = &sqlpp.FieldAccess{Base: &sqlpp.VarRef{Name: ResultVar}, Field: alias}
	}
	free := map[string]bool{}
	FreeVars(e, free)
	// Any other variable reference becomes the result itself (covers
	// ORDER BY x after SELECT DISTINCT VALUE x).
	for v := range free {
		if _, ok := mapping[v]; !ok {
			mapping[v] = &sqlpp.VarRef{Name: ResultVar}
		}
	}
	return SubstituteVars(e, mapping)
}

// addFromTerm extends the plan with one FROM term and its join/unnest
// links.
func (tr *Translator) addFromTerm(plan Op, ft sqlpp.FromTerm, first bool) (Op, error) {
	var err error
	plan, err = tr.addSource(plan, ft.Expr, ft.Alias, false)
	if err != nil {
		return nil, err
	}
	for _, link := range ft.Links {
		if link.IsJoin {
			rhs, err := tr.sourcePlan(link.Expr, link.Alias)
			if err == nil {
				kind := JoinInner
				if link.Kind == sqlpp.JoinLeftOuter {
					kind = JoinLeftOuter
				}
				plan = &JoinOp{L: plan, R: rhs, Kind: kind, On: link.On}
				continue
			}
			// Correlated right side: fall back to unnest + filter (inner
			// joins only).
			if link.Kind == sqlpp.JoinLeftOuter {
				return nil, fmt.Errorf("LEFT JOIN with correlated right side is not supported")
			}
			plan, err = tr.addSource(plan, link.Expr, link.Alias, false)
			if err != nil {
				return nil, err
			}
			plan = &SelectOp{In: plan, Cond: link.On}
			continue
		}
		// UNNEST (correlated by nature).
		plan = &UnnestOp{In: plan, Var: link.Alias, Expr: link.Expr}
	}
	return plan, nil
}

// sourcePlan builds an independent subplan for an uncorrelated source
// (dataset scan or constant collection); errors if correlated.
func (tr *Translator) sourcePlan(e sqlpp.Expr, alias string) (Op, error) {
	if vr, ok := e.(*sqlpp.VarRef); ok && tr.Catalog != nil {
		if _, ok := tr.Catalog.Resolve(vr.Name); ok {
			return &ScanOp{Dataset: vr.Name, Var: alias}, nil
		}
	}
	free := map[string]bool{}
	FreeVars(e, free)
	for v := range free {
		if tr.Catalog != nil {
			if _, ok := tr.Catalog.Resolve(v); ok {
				continue
			}
		}
		return nil, fmt.Errorf("source expression references in-scope variable %q", v)
	}
	return &UnnestOp{In: &EtsOp{}, Var: alias, Expr: e}, nil
}

// addSource extends the current plan with a data source: an independent
// source becomes a cross join; a correlated expression becomes an unnest.
func (tr *Translator) addSource(plan Op, e sqlpp.Expr, alias string, outer bool) (Op, error) {
	// Dataset scan?
	if vr, ok := e.(*sqlpp.VarRef); ok && tr.Catalog != nil {
		if _, ok := tr.Catalog.Resolve(vr.Name); ok {
			scan := &ScanOp{Dataset: vr.Name, Var: alias}
			if isEts(plan) {
				return scan, nil
			}
			return &JoinOp{L: plan, R: scan, Kind: JoinInner}, nil
		}
	}
	// Correlated with the current plan?
	free := map[string]bool{}
	FreeVars(e, free)
	correlated := false
	for _, v := range plan.Schema() {
		if free[v] {
			correlated = true
			break
		}
	}
	if correlated || isEts(plan) {
		return &UnnestOp{In: plan, Var: alias, Expr: e, Outer: outer}, nil
	}
	rhs := &UnnestOp{In: &EtsOp{}, Var: alias, Expr: e, Outer: outer}
	return &JoinOp{L: plan, R: rhs, Kind: JoinInner}, nil
}

func isEts(op Op) bool {
	_, ok := op.(*EtsOp)
	if ok {
		return true
	}
	// A chain of assigns over ets is still a single-tuple source, but
	// joining it is harmless; keep the simple test.
	return false
}
