package algebricks

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"asterix/internal/adm"
	"asterix/internal/hyracks"
	"asterix/internal/sqlpp"
)

// memSource is an in-memory partitioned dataset for tests.
type memSource struct {
	name string
	par  int
	recs []adm.Value
}

func (m *memSource) Name() string    { return m.name }
func (m *memSource) Partitions() int { return m.par }
func (m *memSource) ScanPartition(p int, emit func(adm.Value) error) error {
	for i, r := range m.recs {
		if i%m.par == p {
			if err := emit(r); err != nil {
				return err
			}
		}
	}
	return nil
}

type memCatalog struct {
	sources map[string]*memSource
	indexes map[string]IndexAccessor // "dataset.field"
}

func (c *memCatalog) Resolve(name string) (DataSource, bool) {
	s, ok := c.sources[name]
	return s, ok
}
func (c *memCatalog) ResolveIndex(dataset, field string) (IndexAccessor, bool) {
	ix, ok := c.indexes[dataset+"."+field]
	return ix, ok
}

// memIndex is a scan-backed secondary index for tests: correct, not fast.
type memIndex struct {
	src   *memSource
	field string
	kind  string
}

func (ix *memIndex) Kind() string { return ix.kind }
func (ix *memIndex) SearchRange(part int, lo, hi adm.Value, loInc, hiInc bool, emit func(adm.Value) error) error {
	return ix.src.ScanPartition(part, func(rec adm.Value) error {
		o, ok := rec.(*adm.Object)
		if !ok {
			return nil
		}
		v := o.Get(ix.field)
		if v.Kind() == adm.KindMissing || v.Kind() == adm.KindNull {
			return nil
		}
		if lo != nil {
			if c := adm.Compare(v, lo); c < 0 || (c == 0 && !loInc) {
				return nil
			}
		}
		if hi != nil {
			if c := adm.Compare(v, hi); c > 0 || (c == 0 && !hiInc) {
				return nil
			}
		}
		return emit(rec)
	})
}
func (ix *memIndex) SearchSpatial(part int, rect adm.Rectangle, emit func(adm.Value) error) error {
	return ix.src.ScanPartition(part, func(rec adm.Value) error {
		o, ok := rec.(*adm.Object)
		if !ok {
			return nil
		}
		p, ok := o.Get(ix.field).(adm.Point)
		if !ok {
			return nil
		}
		if p.X >= rect.MinX && p.X <= rect.MaxX && p.Y >= rect.MinY && p.Y <= rect.MaxY {
			return emit(rec)
		}
		return nil
	})
}
func (ix *memIndex) SearchKeyword(part int, token string, emit func(adm.Value) error) error {
	return ix.src.ScanPartition(part, func(rec adm.Value) error {
		o, ok := rec.(*adm.Object)
		if !ok {
			return nil
		}
		s, ok := o.Get(ix.field).(adm.String)
		if !ok {
			return nil
		}
		for _, w := range strings.Fields(strings.ToLower(string(s))) {
			if strings.Trim(w, ".,!?") == strings.ToLower(token) {
				return emit(rec)
			}
		}
		return nil
	})
}

func testCatalog() *memCatalog {
	users := &memSource{name: "Users", par: 2}
	for i := 0; i < 20; i++ {
		users.recs = append(users.recs, adm.NewObject(
			adm.Field{Name: "id", Value: adm.Int64(i)},
			adm.Field{Name: "name", Value: adm.String(fmt.Sprintf("user%02d", i))},
			adm.Field{Name: "age", Value: adm.Int64(20 + i%5)},
			adm.Field{Name: "tags", Value: adm.Array{adm.String("a"), adm.String(fmt.Sprintf("t%d", i%3))}},
		))
	}
	msgs := &memSource{name: "Messages", par: 2}
	for i := 0; i < 50; i++ {
		msgs.recs = append(msgs.recs, adm.NewObject(
			adm.Field{Name: "mid", Value: adm.Int64(i)},
			adm.Field{Name: "authorId", Value: adm.Int64(i % 20)},
			adm.Field{Name: "len", Value: adm.Int64(i * 3)},
		))
	}
	return &memCatalog{sources: map[string]*memSource{"Users": users, "Messages": msgs}}
}

func newEval(cat Catalog) *Evaluator {
	now, _ := adm.ParseDatetime("2019-04-01T00:00:00")
	return &Evaluator{Catalog: cat, Now: now}
}

func evalStr(t *testing.T, ev *Evaluator, src string) adm.Value {
	t.Helper()
	q, err := sqlpp.ParseQuery(src + ";")
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := ev.Eval(q.Body, NewEnv(nil, nil, nil))
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestEvalScalarExpressions(t *testing.T) {
	ev := newEval(nil)
	cases := []struct {
		src  string
		want string
	}{
		{`1 + 2 * 3`, `7`},
		{`(1 + 2) * 3`, `9`},
		{`10 / 4`, `2.5`},
		{`10 / 5`, `2`},
		{`7 % 3`, `1`},
		{`-(3 - 5)`, `2`},
		{`"a" || "b"`, `"ab"`},
		{`1 < 2 AND 2 < 3`, `true`},
		{`1 > 2 OR 2 > 3`, `false`},
		{`NOT false`, `true`},
		{`null = 1`, `null`},
		{`missing = 1`, `missing`},
		{`null IS NULL`, `true`},
		{`missing IS MISSING`, `true`},
		{`null IS UNKNOWN`, `true`},
		{`5 BETWEEN 1 AND 10`, `true`},
		{`5 NOT BETWEEN 1 AND 3`, `true`},
		{`2 IN [1, 2, 3]`, `true`},
		{`5 NOT IN [1, 2, 3]`, `true`},
		{`"hello" LIKE "he%"`, `true`},
		{`"hello" LIKE "h_llo"`, `true`},
		{`"hello" LIKE "x%"`, `false`},
		{`CASE WHEN 1 > 2 THEN "a" ELSE "b" END`, `"b"`},
		{`CASE 2 WHEN 1 THEN "one" WHEN 2 THEN "two" END`, `"two"`},
		{`[1, 2, 3][1]`, `2`},
		{`{"a": {"b": 7}}.a.b`, `7`},
		{`{"a": 1}.nope`, `missing`},
		{`SOME x IN [1, 2, 3] SATISFIES x > 2`, `true`},
		{`EVERY x IN [1, 2, 3] SATISFIES x > 0`, `true`},
		{`EVERY x IN [1, 2, 3] SATISFIES x > 1`, `false`},
		{`coll_count([1, 2, 3])`, `3`},
		{`coll_sum([1, 2, 3])`, `6`},
		{`array_contains([1, 2], 2)`, `true`},
		{`string_length("abc")`, `3`},
		{`upper("aBc")`, `"ABC"`},
		{`contains("hello world", "wor")`, `true`},
		{`ftcontains("Hello, world!", "WORLD")`, `true`},
		{`substring("abcdef", 1, 3)`, `"bcd"`},
		{`abs(-5)`, `5`},
		{`to_string(42)`, `"42"`},
		{`is_missing(missing)`, `true`},
		{`if_missing_or_null(missing, null, 3)`, `3`},
		{`spatial_distance(point(0, 0), point(3, 4))`, `5.0`},
		{`spatial_intersect(point(1, 1), create_rectangle(0, 0, 2, 2))`, `true`},
		{`get_year(datetime("2017-06-01T00:00:00"))`, `2017`},
		{`datetime("2017-01-31T00:00:00") + duration("P1D")`, `datetime("2017-02-01T00:00:00")`},
		{`range(1, 4)`, `[1,2,3,4]`},
	}
	for _, c := range cases {
		got := evalStr(t, ev, "SELECT VALUE "+c.src+" FROM [0] one")
		arr := got.(adm.Array)
		if len(arr) != 1 || arr[0].String() != c.want {
			t.Errorf("%s = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestIntervalBin(t *testing.T) {
	ev := newEval(nil)
	got := evalStr(t, ev, `SELECT VALUE interval_bin(datetime("2014-03-15T10:37:00"),
		datetime("2014-01-01T00:00:00"), duration("PT1H")) FROM [0] one`)
	want := `datetime("2014-03-15T10:00:00")`
	if got.(adm.Array)[0].String() != want {
		t.Errorf("interval_bin = %s, want %s", got, want)
	}
}

func TestInterpretSelectOverDataset(t *testing.T) {
	ev := newEval(testCatalog())
	got := evalStr(t, ev, `SELECT VALUE u.name FROM Users u WHERE u.id < 3 ORDER BY u.id`)
	arr := got.(adm.Array)
	if len(arr) != 3 {
		t.Fatalf("got %d rows", len(arr))
	}
	if arr[0].String() != `"user00"` || arr[2].String() != `"user02"` {
		t.Errorf("rows: %v", arr)
	}
}

func TestInterpretJoinAndGroup(t *testing.T) {
	ev := newEval(testCatalog())
	got := evalStr(t, ev, `
		SELECT u.name AS name, COUNT(m) AS cnt
		FROM Users u JOIN Messages m ON m.authorId = u.id
		WHERE u.id < 2
		GROUP BY u.name AS name
		ORDER BY name`)
	arr := got.(adm.Array)
	if len(arr) != 2 {
		t.Fatalf("groups: %d", len(arr))
	}
	// Messages 0..49, authorId = mid % 20 -> users 0..9 have 3 msgs.
	for _, row := range arr {
		o := row.(*adm.Object)
		if c, _ := adm.AsInt(o.Get("cnt")); c != 3 {
			t.Errorf("cnt = %v", o.Get("cnt"))
		}
	}
}

func TestInterpretLeftOuterJoin(t *testing.T) {
	ev := newEval(testCatalog())
	got := evalStr(t, ev, `
		SELECT VALUE m.mid
		FROM Users u LEFT OUTER JOIN Messages m ON m.authorId = u.id AND m.mid > 1000
		WHERE u.id = 0`)
	arr := got.(adm.Array)
	if len(arr) != 1 || arr[0].Kind() != adm.KindMissing {
		t.Fatalf("left outer mismatch: %v", arr)
	}
}

func TestInterpretUnnestAndGroupAs(t *testing.T) {
	ev := newEval(testCatalog())
	got := evalStr(t, ev, `
		SELECT t AS tag, COUNT(*) AS n
		FROM Users u UNNEST u.tags t
		GROUP BY t AS t
		ORDER BY t`)
	arr := got.(adm.Array)
	// tags: "a" on every user (20), t0/t1/t2 distributed.
	first := arr[0].(*adm.Object)
	if first.Get("tag").String() != `"a"` {
		t.Fatalf("first tag: %v", first)
	}
	if n, _ := adm.AsInt(first.Get("n")); n != 20 {
		t.Errorf(`count("a") = %d`, n)
	}
}

func TestInterpretImplicitGlobalAggregate(t *testing.T) {
	ev := newEval(testCatalog())
	got := evalStr(t, ev, `SELECT COUNT(*) AS n, MIN(u.age) AS lo, MAX(u.age) AS hi FROM Users u`)
	arr := got.(adm.Array)
	if len(arr) != 1 {
		t.Fatalf("rows: %d", len(arr))
	}
	o := arr[0].(*adm.Object)
	if n, _ := adm.AsInt(o.Get("n")); n != 20 {
		t.Errorf("n = %v", o.Get("n"))
	}
	if lo, _ := adm.AsInt(o.Get("lo")); lo != 20 {
		t.Errorf("lo = %v", o.Get("lo"))
	}
	if hi, _ := adm.AsInt(o.Get("hi")); hi != 24 {
		t.Errorf("hi = %v", o.Get("hi"))
	}
}

func TestInterpretSubqueryCorrelated(t *testing.T) {
	ev := newEval(testCatalog())
	got := evalStr(t, ev, `
		SELECT VALUE coll_count((SELECT VALUE m FROM Messages m WHERE m.authorId = u.id))
		FROM Users u WHERE u.id = 1`)
	arr := got.(adm.Array)
	if len(arr) != 1 {
		t.Fatalf("rows: %d", len(arr))
	}
	if n, _ := adm.AsInt(arr[0]); n != 3 {
		t.Errorf("correlated count = %v", arr[0])
	}
}

func TestInterpretDistinctAndLimit(t *testing.T) {
	ev := newEval(testCatalog())
	got := evalStr(t, ev, `SELECT DISTINCT VALUE u.age FROM Users u ORDER BY u.age LIMIT 3 OFFSET 1`)
	arr := got.(adm.Array)
	if len(arr) != 3 {
		t.Fatalf("rows: %v", arr)
	}
	if v, _ := adm.AsInt(arr[0]); v != 21 {
		t.Errorf("offset wrong: %v", arr)
	}
}

// --- Plan translation and rules ---

func translate(t *testing.T, cat Catalog, src string) Op {
	t.Helper()
	q, err := sqlpp.ParseQuery(src + ";")
	if err != nil {
		t.Fatal(err)
	}
	tr := &Translator{Ev: newEval(cat), Catalog: cat}
	plan, err := tr.Translate(q.Body.(*sqlpp.SelectExpr))
	if err != nil {
		t.Fatal(err)
	}
	return tr.Optimize(plan)
}

func TestRuleHashJoinRecognition(t *testing.T) {
	plan := translate(t, testCatalog(),
		`SELECT u.name, m.mid FROM Users u, Messages m WHERE m.authorId = u.id AND u.age > 21`)
	s := PlanString(plan)
	if !strings.Contains(s, "join[inner,hash]") {
		t.Errorf("expected hash join in plan:\n%s", s)
	}
	// The age filter should have been pushed below the join.
	joinIdx := strings.Index(s, "join[")
	selIdx := strings.LastIndex(s, "select")
	if selIdx < joinIdx {
		t.Errorf("selection not pushed below join:\n%s", s)
	}
}

func TestRuleQuantifierToSemijoin(t *testing.T) {
	plan := translate(t, testCatalog(),
		`SELECT VALUE u.name FROM Users u WHERE SOME m IN Messages SATISFIES m.authorId = u.id`)
	s := PlanString(plan)
	if !strings.Contains(s, "join[semi,hash]") {
		t.Errorf("expected hash semi join:\n%s", s)
	}
}

func TestPlanStringShape(t *testing.T) {
	plan := translate(t, testCatalog(), `SELECT VALUE u FROM Users u WHERE u.id = 3`)
	s := PlanString(plan)
	if !strings.Contains(s, "scan(Users as u)") {
		t.Errorf("plan:\n%s", s)
	}
}

// --- End-to-end jobgen execution ---

func runJob(t *testing.T, cat Catalog, src string) []adm.Value {
	t.Helper()
	q, err := sqlpp.ParseQuery(src + ";")
	if err != nil {
		t.Fatal(err)
	}
	ev := newEval(cat)
	tr := &Translator{Ev: ev, Catalog: cat}
	plan, err := tr.Translate(q.Body.(*sqlpp.SelectExpr))
	if err != nil {
		t.Fatal(err)
	}
	plan = tr.Optimize(plan)
	cluster, err := hyracks.NewCluster(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := &JobGen{Cluster: cluster, Catalog: cat, Ev: ev, Parallelism: 2}
	coll := &hyracks.Collector{}
	job, err := g.Build(plan, coll)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Run(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	var out []adm.Value
	for _, tp := range coll.Tuples() {
		out = append(out, tp[0])
	}
	return out
}

// jobMatchesInterp cross-checks the parallel job result against the
// serial interpreter (order-insensitively unless ORDER BY is present).
func jobMatchesInterp(t *testing.T, cat Catalog, src string, ordered bool) {
	t.Helper()
	jobRes := runJob(t, cat, src)
	ev := newEval(cat)
	q, _ := sqlpp.ParseQuery(src + ";")
	iv, err := ev.Eval(q.Body, NewEnv(nil, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	interpRes := []adm.Value(iv.(adm.Array))
	if len(jobRes) != len(interpRes) {
		t.Fatalf("job returned %d rows, interpreter %d\njob: %v\ninterp: %v",
			len(jobRes), len(interpRes), jobRes, interpRes)
	}
	a := make([]string, len(jobRes))
	b := make([]string, len(interpRes))
	for i := range jobRes {
		a[i] = adm.ToJSON(jobRes[i])
		b[i] = adm.ToJSON(interpRes[i])
	}
	if !ordered {
		sort.Strings(a)
		sort.Strings(b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs:\njob:    %s\ninterp: %s", i, a[i], b[i])
		}
	}
}

func TestJobEndToEnd(t *testing.T) {
	cat := testCatalog()
	queries := []struct {
		src     string
		ordered bool
	}{
		{`SELECT VALUE u.name FROM Users u WHERE u.id < 5`, false},
		{`SELECT VALUE u.name FROM Users u WHERE u.id < 5 ORDER BY u.name DESC`, true},
		{`SELECT u.name AS n, m.mid AS m FROM Users u, Messages m WHERE m.authorId = u.id AND u.id < 3`, false},
		{`SELECT u.age AS age, COUNT(*) AS n, SUM(u.id) AS s FROM Users u GROUP BY u.age AS age`, false},
		{`SELECT COUNT(*) AS n FROM Users u`, false},
		{`SELECT COUNT(*) AS n FROM Users u WHERE u.id > 1000`, false},
		{`SELECT DISTINCT VALUE u.age FROM Users u`, false},
		{`SELECT VALUE u.name FROM Users u ORDER BY u.id LIMIT 4 OFFSET 2`, true},
		{`SELECT VALUE t FROM Users u UNNEST u.tags t WHERE u.id = 1`, false},
		{`SELECT VALUE u.name FROM Users u WHERE SOME m IN Messages SATISFIES m.authorId = u.id AND m.len > 100`, false},
		{`SELECT u.name AS name, m.mid AS mid FROM Users u LEFT OUTER JOIN Messages m ON m.authorId = u.id WHERE u.id >= 18`, false},
		{`SELECT a AS age, cnt AS c FROM Users u GROUP BY u.age AS a LET cnt = 1 SELECT a, cnt`, false},
	}
	for _, qc := range queries[:len(queries)-1] {
		t.Run(qc.src[:24], func(t *testing.T) {
			jobMatchesInterp(t, cat, qc.src, qc.ordered)
		})
	}
}

func TestJobGroupAs(t *testing.T) {
	cat := testCatalog()
	jobMatchesInterp(t, cat,
		`SELECT a AS age, COLL_COUNT(g) AS n FROM Users u GROUP BY u.age AS a GROUP AS g`, false)
}

func TestJobHavingAndOrderByAggregate(t *testing.T) {
	cat := testCatalog()
	jobMatchesInterp(t, cat,
		`SELECT u.age AS age, COUNT(*) AS n FROM Users u GROUP BY u.age AS age HAVING COUNT(*) >= 4 ORDER BY COUNT(*) DESC, age`, true)
}

func TestJobSelectStar(t *testing.T) {
	cat := testCatalog()
	res := runJob(t, cat, `SELECT * FROM Users u WHERE u.id = 7`)
	if len(res) != 1 {
		t.Fatalf("rows: %d", len(res))
	}
	o := res[0].(*adm.Object)
	inner, ok := o.Get("u").(*adm.Object)
	if !ok {
		t.Fatalf("star row: %v", o)
	}
	if id, _ := adm.AsInt(inner.Get("id")); id != 7 {
		t.Errorf("star content: %v", inner)
	}
}

func TestRuleSemijoinWithResidualUsesHash(t *testing.T) {
	// A quantifier whose SATISFIES mixes an equality with a range — the
	// Figure 3(c) shape — must still become a *hash* semi join (the range
	// conjuncts ride as a residual predicate).
	plan := translate(t, testCatalog(),
		`SELECT VALUE u.name FROM Users u
		 WHERE SOME m IN Messages SATISFIES m.authorId = u.id AND m.len > 50`)
	s := PlanString(plan)
	if !strings.Contains(s, "join[semi,hash]") {
		t.Errorf("expected hash semi join with residual:\n%s", s)
	}
}
