package algebricks

import (
	"math"
	"sort"
	"strings"
	"time"

	"asterix/internal/adm"
	"asterix/internal/sqlpp"
)

// evalCall dispatches built-in function calls. Aggregate functions
// evaluated in scalar position receive a collection argument (their
// COLL_-style semantics); under GROUP BY the translator rewrites them to
// runtime aggregates before this path is reached.
func (ev *Evaluator) evalCall(x *sqlpp.Call, env *Env) (adm.Value, error) {
	args := make([]adm.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := ev.Eval(a, env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return ev.callFn(x.Fn, args, x.Distinct)
}

func (ev *Evaluator) callFn(fn string, args []adm.Value, distinct bool) (adm.Value, error) {
	need := func(n int) error {
		if len(args) != n {
			return evalErrf("%s expects %d argument(s), got %d", fn, n, len(args))
		}
		return nil
	}
	str := func(i int) (string, bool) {
		s, ok := args[i].(adm.String)
		return string(s), ok
	}
	anyUnknown := func() bool {
		for _, a := range args {
			if a.Kind() <= adm.KindNull {
				return true
			}
		}
		return false
	}

	switch fn {
	// --- Constructors (ADM's extended types). ---
	case "datetime":
		if err := need(1); err != nil {
			return nil, err
		}
		if dt, ok := args[0].(adm.Datetime); ok {
			return dt, nil
		}
		s, ok := str(0)
		if !ok {
			return adm.Null, nil
		}
		dt, err := adm.ParseDatetime(s)
		if err != nil {
			return adm.Null, nil
		}
		return dt, nil
	case "date":
		if err := need(1); err != nil {
			return nil, err
		}
		s, ok := str(0)
		if !ok {
			return adm.Null, nil
		}
		d, err := adm.ParseDate(s)
		if err != nil {
			return adm.Null, nil
		}
		return d, nil
	case "time":
		if err := need(1); err != nil {
			return nil, err
		}
		s, ok := str(0)
		if !ok {
			return adm.Null, nil
		}
		t, err := adm.ParseTime(s)
		if err != nil {
			return adm.Null, nil
		}
		return t, nil
	case "duration":
		if err := need(1); err != nil {
			return nil, err
		}
		s, ok := str(0)
		if !ok {
			return adm.Null, nil
		}
		d, err := adm.ParseDuration(s)
		if err != nil {
			return adm.Null, nil
		}
		return d, nil
	case "point":
		if err := need(2); err != nil {
			return nil, err
		}
		xf, ok1 := adm.AsFloat(args[0])
		yf, ok2 := adm.AsFloat(args[1])
		if !ok1 || !ok2 {
			return adm.Null, nil
		}
		return adm.Point{X: xf, Y: yf}, nil
	case "create_rectangle", "rectangle":
		if err := need(4); err != nil {
			return nil, err
		}
		var f [4]float64
		for i := range f {
			v, ok := adm.AsFloat(args[i])
			if !ok {
				return adm.Null, nil
			}
			f[i] = v
		}
		return adm.Rectangle{MinX: f[0], MinY: f[1], MaxX: f[2], MaxY: f[3]}, nil
	case "current_datetime":
		return ev.Now, nil
	case "current_date":
		return adm.Date(int64(ev.Now) / (24 * 3600 * 1000)), nil

	// --- Temporal accessors. ---
	case "get_year", "year":
		if err := need(1); err != nil {
			return nil, err
		}
		if dt, ok := args[0].(adm.Datetime); ok {
			return adm.Int64(time.UnixMilli(int64(dt)).UTC().Year()), nil
		}
		if d, ok := args[0].(adm.Date); ok {
			return adm.Int64(time.Unix(int64(d)*24*3600, 0).UTC().Year()), nil
		}
		return adm.Null, nil
	case "get_month", "month":
		if err := need(1); err != nil {
			return nil, err
		}
		if dt, ok := args[0].(adm.Datetime); ok {
			return adm.Int64(int(time.UnixMilli(int64(dt)).UTC().Month())), nil
		}
		if d, ok := args[0].(adm.Date); ok {
			return adm.Int64(int(time.Unix(int64(d)*24*3600, 0).UTC().Month())), nil
		}
		return adm.Null, nil
	case "get_day", "day":
		if err := need(1); err != nil {
			return nil, err
		}
		if dt, ok := args[0].(adm.Datetime); ok {
			return adm.Int64(time.UnixMilli(int64(dt)).UTC().Day()), nil
		}
		return adm.Null, nil
	case "get_interval_bin", "interval_bin":
		// interval_bin(dt, origin, duration): the start of dt's bin —
		// the temporal binning the paper's Section V-D user study needed.
		if err := need(3); err != nil {
			return nil, err
		}
		dt, ok1 := args[0].(adm.Datetime)
		origin, ok2 := args[1].(adm.Datetime)
		dur, ok3 := args[2].(adm.Duration)
		if !ok1 || !ok2 || !ok3 || (dur.Millis == 0 && dur.Months == 0) {
			return adm.Null, nil
		}
		if dur.Months != 0 {
			// Month-granularity binning.
			t0 := time.UnixMilli(int64(origin)).UTC()
			t := time.UnixMilli(int64(dt)).UTC()
			months := (t.Year()-t0.Year())*12 + int(t.Month()) - int(t0.Month())
			bins := months / int(dur.Months)
			if months < 0 && months%int(dur.Months) != 0 {
				bins--
			}
			return adm.AddDuration(origin, adm.Duration{Months: int32(bins) * dur.Months}), nil
		}
		delta := int64(dt) - int64(origin)
		bins := delta / dur.Millis
		if delta < 0 && delta%dur.Millis != 0 {
			bins--
		}
		return adm.Datetime(int64(origin) + bins*dur.Millis), nil

	case "duration_ms", "ms_from_duration":
		// Millisecond image of a duration (months converted at 30 days,
		// as in the duration total order).
		if err := need(1); err != nil {
			return nil, err
		}
		d, ok := args[0].(adm.Duration)
		if !ok {
			return adm.Null, nil
		}
		return adm.Int64(int64(d.Months)*30*24*3600*1000 + d.Millis), nil
	case "datetime_to_ms", "unix_time_from_datetime_in_ms":
		if err := need(1); err != nil {
			return nil, err
		}
		dt, ok := args[0].(adm.Datetime)
		if !ok {
			return adm.Null, nil
		}
		return adm.Int64(int64(dt)), nil
	case "datetime_from_ms", "datetime_from_unix_time_in_ms":
		if err := need(1); err != nil {
			return nil, err
		}
		i, ok := adm.AsInt(args[0])
		if !ok {
			return adm.Null, nil
		}
		return adm.Datetime(i), nil

	// --- Strings. ---
	case "lower", "lowercase":
		if err := need(1); err != nil {
			return nil, err
		}
		s, ok := str(0)
		if !ok {
			return adm.Null, nil
		}
		return adm.String(strings.ToLower(s)), nil
	case "upper", "uppercase":
		if err := need(1); err != nil {
			return nil, err
		}
		s, ok := str(0)
		if !ok {
			return adm.Null, nil
		}
		return adm.String(strings.ToUpper(s)), nil
	case "string_length", "length":
		if err := need(1); err != nil {
			return nil, err
		}
		s, ok := str(0)
		if !ok {
			return adm.Null, nil
		}
		return adm.Int64(len(s)), nil
	case "contains":
		if err := need(2); err != nil {
			return nil, err
		}
		s, ok1 := str(0)
		sub, ok2 := str(1)
		if !ok1 || !ok2 {
			return adm.Null, nil
		}
		return adm.Boolean(strings.Contains(s, sub)), nil
	case "ftcontains":
		// Full-text containment: token membership (keyword index).
		if err := need(2); err != nil {
			return nil, err
		}
		s, ok1 := str(0)
		w, ok2 := str(1)
		if !ok1 || !ok2 {
			return adm.Null, nil
		}
		for _, tok := range Tokenize(s) {
			if tok == strings.ToLower(w) {
				return adm.Boolean(true), nil
			}
		}
		return adm.Boolean(false), nil
	case "starts_with":
		if err := need(2); err != nil {
			return nil, err
		}
		s, ok1 := str(0)
		pre, ok2 := str(1)
		if !ok1 || !ok2 {
			return adm.Null, nil
		}
		return adm.Boolean(strings.HasPrefix(s, pre)), nil
	case "ends_with":
		if err := need(2); err != nil {
			return nil, err
		}
		s, ok1 := str(0)
		suf, ok2 := str(1)
		if !ok1 || !ok2 {
			return adm.Null, nil
		}
		return adm.Boolean(strings.HasSuffix(s, suf)), nil
	case "substring", "substr":
		if len(args) < 2 || len(args) > 3 {
			return nil, evalErrf("substring expects 2 or 3 arguments")
		}
		s, ok := str(0)
		if !ok {
			return adm.Null, nil
		}
		start, ok := adm.AsInt(args[1])
		if !ok {
			return adm.Null, nil
		}
		if start < 0 {
			start = 0
		}
		if start > int64(len(s)) {
			start = int64(len(s))
		}
		end := int64(len(s))
		if len(args) == 3 {
			n, ok := adm.AsInt(args[2])
			if !ok {
				return adm.Null, nil
			}
			end = start + n
			if end > int64(len(s)) {
				end = int64(len(s))
			}
		}
		return adm.String(s[start:end]), nil
	case "split":
		if err := need(2); err != nil {
			return nil, err
		}
		s, ok1 := str(0)
		sep, ok2 := str(1)
		if !ok1 || !ok2 {
			return adm.Null, nil
		}
		var out adm.Array
		for _, part := range strings.Split(s, sep) {
			out = append(out, adm.String(part))
		}
		return out, nil
	case "to_string", "string":
		if err := need(1); err != nil {
			return nil, err
		}
		if s, ok := args[0].(adm.String); ok {
			return s, nil
		}
		return adm.String(args[0].String()), nil

	// --- Numerics. ---
	case "abs":
		if err := need(1); err != nil {
			return nil, err
		}
		switch n := args[0].(type) {
		case adm.Int64:
			if n < 0 {
				return -n, nil
			}
			return n, nil
		case adm.Double:
			return adm.Double(math.Abs(float64(n))), nil
		}
		return adm.Null, nil
	case "floor", "ceil", "round", "sqrt":
		if err := need(1); err != nil {
			return nil, err
		}
		f, ok := adm.AsFloat(args[0])
		if !ok {
			return adm.Null, nil
		}
		switch fn {
		case "floor":
			return adm.Double(math.Floor(f)), nil
		case "ceil":
			return adm.Double(math.Ceil(f)), nil
		case "round":
			return adm.Double(math.Round(f)), nil
		default:
			return adm.Double(math.Sqrt(f)), nil
		}
	case "to_bigint", "to_number", "int":
		if err := need(1); err != nil {
			return nil, err
		}
		if i, ok := adm.AsInt(args[0]); ok {
			return adm.Int64(i), nil
		}
		return adm.Null, nil

	// --- Collections (COLL_* and friends). ---
	case "coll_count", "array_count", "len":
		if err := need(1); err != nil {
			return nil, err
		}
		if elems, ok := asCollection(args[0]); ok {
			return adm.Int64(len(elems)), nil
		}
		return adm.Null, nil
	case "coll_sum", "array_sum", "coll_min", "array_min", "coll_max",
		"array_max", "coll_avg", "array_avg",
		"count", "sum", "min", "max", "avg", "array_agg":
		// Scalar (COLL_-style) aggregate over a collection argument.
		if err := need(1); err != nil {
			return nil, err
		}
		elems, ok := asCollection(args[0])
		if !ok {
			if anyUnknown() {
				return adm.Null, nil
			}
			return nil, evalErrf("%s expects a collection, got %s", fn, args[0].Kind())
		}
		if distinct {
			elems = dedupe(elems)
		}
		return foldAggregate(strings.TrimPrefix(strings.TrimPrefix(fn, "coll_"), "array_"), elems)

	case "field_collect":
		// field_collect(groupAs, "name"): project one field out of a
		// GROUP AS collection (AQL's with-variable lowering).
		if err := need(2); err != nil {
			return nil, err
		}
		elems, ok := asCollection(args[0])
		if !ok {
			return adm.Null, nil
		}
		name, ok := str(1)
		if !ok {
			return adm.Null, nil
		}
		var out adm.Array
		for _, e := range elems {
			if o, ok := e.(*adm.Object); ok {
				out = append(out, o.Get(name))
			}
		}
		return out, nil

	case "array_contains":
		if err := need(2); err != nil {
			return nil, err
		}
		elems, ok := asCollection(args[0])
		if !ok {
			return adm.Null, nil
		}
		for _, e := range elems {
			if adm.Compare(e, args[1]) == 0 {
				return adm.Boolean(true), nil
			}
		}
		return adm.Boolean(false), nil
	case "array_distinct":
		if err := need(1); err != nil {
			return nil, err
		}
		elems, ok := asCollection(args[0])
		if !ok {
			return adm.Null, nil
		}
		return adm.Array(dedupe(elems)), nil
	case "range":
		if err := need(2); err != nil {
			return nil, err
		}
		lo, ok1 := adm.AsInt(args[0])
		hi, ok2 := adm.AsInt(args[1])
		if !ok1 || !ok2 {
			return adm.Null, nil
		}
		var out adm.Array
		for i := lo; i <= hi; i++ {
			out = append(out, adm.Int64(i))
		}
		return out, nil

	// --- Spatial. ---
	case "spatial_intersect":
		if err := need(2); err != nil {
			return nil, err
		}
		return spatialIntersect(args[0], args[1])
	case "spatial_distance":
		if err := need(2); err != nil {
			return nil, err
		}
		p1, ok1 := args[0].(adm.Point)
		p2, ok2 := args[1].(adm.Point)
		if !ok1 || !ok2 {
			return adm.Null, nil
		}
		return adm.Double(math.Hypot(p1.X-p2.X, p1.Y-p2.Y)), nil
	case "get_x":
		if err := need(1); err != nil {
			return nil, err
		}
		if p, ok := args[0].(adm.Point); ok {
			return adm.Double(p.X), nil
		}
		return adm.Null, nil
	case "get_y":
		if err := need(1); err != nil {
			return nil, err
		}
		if p, ok := args[0].(adm.Point); ok {
			return adm.Double(p.Y), nil
		}
		return adm.Null, nil

	// --- Objects. ---
	case "object_names":
		if err := need(1); err != nil {
			return nil, err
		}
		if o, ok := args[0].(*adm.Object); ok {
			var out adm.Array
			for _, f := range o.Fields() {
				out = append(out, adm.String(f.Name))
			}
			return out, nil
		}
		return adm.Null, nil
	case "object_remove":
		if err := need(2); err != nil {
			return nil, err
		}
		o, ok1 := args[0].(*adm.Object)
		name, ok2 := str(1)
		if !ok1 || !ok2 {
			return adm.Null, nil
		}
		return o.Without(name), nil
	case "object_merge":
		if err := need(2); err != nil {
			return nil, err
		}
		a, ok1 := args[0].(*adm.Object)
		b, ok2 := args[1].(*adm.Object)
		if !ok1 || !ok2 {
			return adm.Null, nil
		}
		out := adm.NewObject(a.Fields()...)
		for _, f := range b.Fields() {
			out.Set(f.Name, f.Value)
		}
		return out, nil

	case "is_missing":
		if err := need(1); err != nil {
			return nil, err
		}
		return adm.Boolean(args[0].Kind() == adm.KindMissing), nil
	case "is_null":
		if err := need(1); err != nil {
			return nil, err
		}
		return adm.Boolean(args[0].Kind() == adm.KindNull), nil
	case "if_missing_or_null", "coalesce":
		for _, a := range args {
			if a.Kind() > adm.KindNull {
				return a, nil
			}
		}
		return adm.Null, nil
	}
	return nil, evalErrf("unknown function %q", fn)
}

// foldAggregate applies a COLL_-style aggregate over elements, skipping
// null/missing per SQL semantics.
func foldAggregate(fn string, elems []adm.Value) (adm.Value, error) {
	switch fn {
	case "count":
		n := 0
		for _, e := range elems {
			if e.Kind() > adm.KindNull {
				n++
			}
		}
		return adm.Int64(n), nil
	case "array_agg", "agg":
		return adm.Array(elems), nil
	case "sum", "avg":
		var sum adm.Value = adm.Null
		n := 0
		for _, e := range elems {
			if e.Kind() <= adm.KindNull {
				continue
			}
			if _, ok := adm.AsFloat(e); !ok {
				return nil, evalErrf("%s over non-numeric %s", fn, e.Kind())
			}
			if sum.Kind() <= adm.KindNull {
				sum = e
			} else {
				s, _ := adm.AsFloat(sum)
				v, _ := adm.AsFloat(e)
				si, sInt := sum.(adm.Int64)
				vi, vInt := e.(adm.Int64)
				if sInt && vInt {
					sum = si + vi
				} else {
					sum = adm.Double(s + v)
				}
			}
			n++
		}
		if fn == "sum" {
			return sum, nil
		}
		if n == 0 || sum.Kind() <= adm.KindNull {
			return adm.Null, nil
		}
		f, _ := adm.AsFloat(sum)
		return adm.Double(f / float64(n)), nil
	case "min", "max":
		var best adm.Value = adm.Null
		for _, e := range elems {
			if e.Kind() <= adm.KindNull {
				continue
			}
			if best.Kind() <= adm.KindNull {
				best = e
				continue
			}
			c := adm.Compare(e, best)
			if (fn == "min" && c < 0) || (fn == "max" && c > 0) {
				best = e
			}
		}
		return best, nil
	}
	return nil, evalErrf("unknown aggregate %q", fn)
}

func dedupe(elems []adm.Value) []adm.Value {
	sorted := append([]adm.Value(nil), elems...)
	sort.Slice(sorted, func(i, j int) bool { return adm.Compare(sorted[i], sorted[j]) < 0 })
	var out []adm.Value
	for i, e := range sorted {
		if i == 0 || adm.Compare(e, sorted[i-1]) != 0 {
			out = append(out, e)
		}
	}
	return out
}

func spatialIntersect(a, b adm.Value) (adm.Value, error) {
	rect := func(v adm.Value) (adm.Rectangle, bool) {
		switch x := v.(type) {
		case adm.Rectangle:
			return x, true
		case adm.Point:
			return adm.Rectangle{MinX: x.X, MinY: x.Y, MaxX: x.X, MaxY: x.Y}, true
		}
		return adm.Rectangle{}, false
	}
	ra, ok1 := rect(a)
	rb, ok2 := rect(b)
	if !ok1 || !ok2 {
		return adm.Null, nil
	}
	return adm.Boolean(ra.Intersects(rb)), nil
}

// Tokenize splits text into lower-cased word tokens (the keyword index's
// tokenizer).
func Tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			cur.WriteRune(r)
		} else if cur.Len() > 0 {
			out = append(out, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	if cur.Len() > 0 {
		out = append(out, strings.ToLower(cur.String()))
	}
	return out
}
