package algebricks

import (
	"sort"

	"asterix/internal/adm"
	"asterix/internal/sqlpp"
)

// interpRow is one binding tuple during serial interpretation.
type interpRow struct {
	env  *Env
	vars []string // row variables in binding order (for GROUP AS / *)
}

// interpretSelect executes a nested SELECT block serially against outer
// bindings (the subplan path; top-level queries go through job
// generation).
func (ev *Evaluator) interpretSelect(sel *sqlpp.SelectExpr, outer *Env) ([]adm.Value, error) {
	base := NewEnv(outer, nil, nil)
	for _, w := range sel.With {
		v, err := ev.Eval(w.Expr, base)
		if err != nil {
			return nil, err
		}
		base.Bind(w.Var, v)
	}

	rows := []interpRow{{env: NewEnv(base, nil, nil)}}

	bindCollection := func(in []interpRow, expr sqlpp.Expr, alias string) ([]interpRow, error) {
		var out []interpRow
		for _, row := range in {
			coll, err := ev.Eval(expr, row.env)
			if err != nil {
				return nil, err
			}
			elems, ok := asCollection(coll)
			if !ok {
				continue // non-collection sources bind nothing
			}
			for _, el := range elems {
				env := NewEnv(row.env, []string{alias}, []adm.Value{el})
				out = append(out, interpRow{env: env, vars: append(append([]string(nil), row.vars...), alias)})
			}
		}
		return out, nil
	}

	for _, ft := range sel.From {
		var err error
		rows, err = bindCollection(rows, ft.Expr, ft.Alias)
		if err != nil {
			return nil, err
		}
		for _, link := range ft.Links {
			if !link.IsJoin {
				// UNNEST.
				rows, err = bindCollection(rows, link.Expr, link.Alias)
				if err != nil {
					return nil, err
				}
				continue
			}
			var joined []interpRow
			for _, row := range rows {
				coll, err := ev.Eval(link.Expr, row.env)
				if err != nil {
					return nil, err
				}
				elems, _ := asCollection(coll)
				matched := false
				for _, el := range elems {
					env := NewEnv(row.env, []string{link.Alias}, []adm.Value{el})
					ok, err := ev.truthyExpr(link.On, env)
					if err != nil {
						return nil, err
					}
					if ok {
						matched = true
						joined = append(joined, interpRow{env: env, vars: append(append([]string(nil), row.vars...), link.Alias)})
					}
				}
				if !matched && link.Kind == sqlpp.JoinLeftOuter {
					env := NewEnv(row.env, []string{link.Alias}, []adm.Value{adm.Missing})
					joined = append(joined, interpRow{env: env, vars: append(append([]string(nil), row.vars...), link.Alias)})
				}
			}
			rows = joined
		}
	}

	for _, lc := range sel.Lets {
		for i := range rows {
			v, err := ev.Eval(lc.Expr, rows[i].env)
			if err != nil {
				return nil, err
			}
			rows[i].env.Bind(lc.Var, v)
			rows[i].vars = append(rows[i].vars, lc.Var)
		}
	}

	if sel.Where != nil {
		var kept []interpRow
		for _, row := range rows {
			ok, err := ev.truthyExpr(sel.Where, row.env)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, row)
			}
		}
		rows = kept
	}

	// Grouping (explicit GROUP BY, or implicit global aggregation).
	// Aggregate extraction uses one shared counter across SELECT, HAVING,
	// and ORDER BY so the $agg variables bound by grouping line up with
	// the rewritten expressions used below.
	implicitAgg := len(sel.GroupBy) == 0 && ev.selectHasAggregates(sel)
	grouping := len(sel.GroupBy) > 0 || implicitAgg

	aliasMap := map[string]sqlpp.Expr{}
	for _, item := range sel.Select.Items {
		if item.Alias != "" {
			aliasMap[item.Alias] = item.Expr
		}
	}
	projExpr := ev.projectionExpr(sel)
	havingExpr := sel.Having
	orderExprs := make([]sqlpp.Expr, len(sel.OrderBy))
	for i, oi := range sel.OrderBy {
		orderExprs[i] = SubstituteVars(oi.Expr, aliasMap)
	}
	if grouping {
		gen := 0
		var aggs []AggRef
		repl := groupKeyRewrites(sel)
		projExpr = SubstituteByKey(ExtractAggregates(projExpr, &gen, &aggs), repl)
		if havingExpr != nil {
			havingExpr = SubstituteByKey(ExtractAggregates(havingExpr, &gen, &aggs), repl)
		}
		for i := range orderExprs {
			orderExprs[i] = SubstituteByKey(ExtractAggregates(orderExprs[i], &gen, &aggs), repl)
		}
		grouped, err := ev.interpretGroup(sel, rows, base)
		if err != nil {
			return nil, err
		}
		rows = grouped
	}

	if havingExpr != nil {
		var kept []interpRow
		for _, row := range rows {
			ok, err := ev.truthyExpr(havingExpr, row.env)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, row)
			}
		}
		rows = kept
	}

	type outRow struct {
		keys  []adm.Value
		value adm.Value
	}
	isStar := false
	if c, ok := projExpr.(*sqlpp.Call); ok && c.Fn == "$star" {
		isStar = true
	}
	var outs []outRow
	for _, row := range rows {
		var v adm.Value
		var err error
		if isStar {
			o := adm.NewObject()
			for _, name := range row.vars {
				if val, ok := row.env.Lookup(name); ok && val.Kind() != adm.KindMissing {
					o.Set(name, val)
				}
			}
			v = o
		} else {
			v, err = ev.Eval(projExpr, row.env)
			if err != nil {
				return nil, err
			}
		}
		var keys []adm.Value
		for _, oe := range orderExprs {
			kv, err := ev.Eval(oe, row.env)
			if err != nil {
				return nil, err
			}
			keys = append(keys, kv)
		}
		outs = append(outs, outRow{keys: keys, value: v})
	}

	if len(sel.OrderBy) > 0 {
		sort.SliceStable(outs, func(i, j int) bool {
			for k, oi := range sel.OrderBy {
				c := adm.Compare(outs[i].keys[k], outs[j].keys[k])
				if oi.Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
	}

	var result []adm.Value
	for _, o := range outs {
		result = append(result, o.value)
	}
	if sel.Select.Distinct {
		result = dedupe(result)
	}
	// OFFSET/LIMIT.
	if sel.Offset != nil {
		v, err := ev.Eval(sel.Offset, base)
		if err != nil {
			return nil, err
		}
		if n, ok := adm.AsInt(v); ok && n > 0 {
			if int(n) >= len(result) {
				result = nil
			} else {
				result = result[n:]
			}
		}
	}
	if sel.Limit != nil {
		v, err := ev.Eval(sel.Limit, base)
		if err != nil {
			return nil, err
		}
		if n, ok := adm.AsInt(v); ok && n >= 0 && int(n) < len(result) {
			result = result[:n]
		}
	}
	return result, nil
}

// selectHasAggregates reports whether the block's SELECT/HAVING/ORDER
// expressions contain SQL aggregates (triggering implicit grouping).
func (ev *Evaluator) selectHasAggregates(sel *sqlpp.SelectExpr) bool {
	if sel.Select.Value != nil && HasAggregates(sel.Select.Value) {
		return true
	}
	for _, it := range sel.Select.Items {
		if HasAggregates(it.Expr) {
			return true
		}
	}
	if sel.Having != nil && HasAggregates(sel.Having) {
		return true
	}
	return false
}

// projectionExpr builds the single output expression of the block.
func (ev *Evaluator) projectionExpr(sel *sqlpp.SelectExpr) sqlpp.Expr {
	if sel.Select.Value != nil {
		return sel.Select.Value
	}
	if sel.Select.Star {
		// {* } expands to an object of all from-term/let variables; the
		// interpreter and jobgen provide $star support via a marker call.
		return &sqlpp.Call{Fn: "$star"}
	}
	obj := &sqlpp.ObjectConstructor{}
	for _, it := range sel.Select.Items {
		obj.Fields = append(obj.Fields, sqlpp.ObjectField{
			Name:  &sqlpp.Literal{Value: adm.String(it.Alias)},
			Value: it.Expr,
		})
	}
	return obj
}

// interpretGroup groups rows and produces one row per group with: group
// keys, GROUP AS binding, and extracted aggregate variables.
func (ev *Evaluator) interpretGroup(sel *sqlpp.SelectExpr, rows []interpRow, base *Env) ([]interpRow, error) {
	// Deterministic aggregate extraction across SELECT, HAVING, ORDER.
	gen := 0
	var aggs []AggRef
	ExtractAggregates(ev.projectionExpr(sel), &gen, &aggs)
	if sel.Having != nil {
		ExtractAggregates(sel.Having, &gen, &aggs)
	}
	aliasMap := map[string]sqlpp.Expr{}
	for _, item := range sel.Select.Items {
		if item.Alias != "" {
			aliasMap[item.Alias] = item.Expr
		}
	}
	for _, oi := range sel.OrderBy {
		ExtractAggregates(SubstituteVars(oi.Expr, aliasMap), &gen, &aggs)
	}

	type groupState struct {
		keys []adm.Value
		rows []interpRow
	}
	groups := map[uint64][]*groupState{}
	var order []*groupState
	for _, row := range rows {
		keys := make([]adm.Value, len(sel.GroupBy))
		var h uint64 = 1469598103934665603
		for i, gk := range sel.GroupBy {
			v, err := ev.Eval(gk.Expr, row.env)
			if err != nil {
				return nil, err
			}
			keys[i] = v
			h = h*1099511628211 ^ adm.Hash64(v)
		}
		var g *groupState
		for _, cand := range groups[h] {
			same := true
			for i := range keys {
				if adm.Compare(cand.keys[i], keys[i]) != 0 {
					same = false
					break
				}
			}
			if same {
				g = cand
				break
			}
		}
		if g == nil {
			g = &groupState{keys: keys}
			groups[h] = append(groups[h], g)
			order = append(order, g)
		}
		g.rows = append(g.rows, row)
	}
	// Implicit aggregation over an empty input still yields one group.
	if len(sel.GroupBy) == 0 && len(order) == 0 {
		order = append(order, &groupState{})
	}

	var out []interpRow
	for _, g := range order {
		env := NewEnv(base, nil, nil)
		var vars []string
		for i, gk := range sel.GroupBy {
			env.Bind(gk.Alias, g.keys[i])
			vars = append(vars, gk.Alias)
		}
		if sel.GroupAs != "" {
			var coll adm.Array
			for _, row := range g.rows {
				o := adm.NewObject()
				for _, v := range row.vars {
					if val, ok := row.env.Lookup(v); ok {
						o.Set(v, val)
					}
				}
				coll = append(coll, o)
			}
			env.Bind(sel.GroupAs, coll)
			vars = append(vars, sel.GroupAs)
		}
		for _, a := range aggs {
			var vals []adm.Value
			for _, row := range g.rows {
				if a.Star {
					vals = append(vals, adm.Int64(1))
					continue
				}
				v, err := ev.Eval(a.Arg, row.env)
				if err != nil {
					return nil, err
				}
				vals = append(vals, v)
			}
			if a.Distinct {
				vals = dedupe(vals)
			}
			fn := a.Fn
			if a.Star {
				fn = "count"
			}
			v, err := foldAggregate(fn, vals)
			if err != nil {
				return nil, err
			}
			env.Bind(a.Var, v)
			vars = append(vars, a.Var)
		}
		out = append(out, interpRow{env: env, vars: vars})
	}
	return out, nil
}

// truthyExpr evaluates e and applies SQL boolean semantics.
func (ev *Evaluator) truthyExpr(e sqlpp.Expr, env *Env) (bool, error) {
	v, err := ev.Eval(e, env)
	if err != nil {
		return false, err
	}
	b, known := adm.Truthy(v)
	return known && b, nil
}
