// Package algebricks is the data-model-agnostic query compilation layer of
// the stack (Figures 4 and 5): it translates the shared SQL++/AQL AST into
// a logical algebra, applies rule-based rewrites (selection pushdown, join
// recognition, quantifier-to-semijoin, index-access introduction), and
// generates partitioned-parallel Hyracks jobs.
package algebricks

import (
	"fmt"
	"strings"

	"asterix/internal/adm"
	"asterix/internal/sqlpp"
)

// Env is a lexical variable environment for expression evaluation.
type Env struct {
	names  []string
	vals   []adm.Value
	parent *Env
}

// NewEnv creates a child environment with the given bindings.
func NewEnv(parent *Env, names []string, vals []adm.Value) *Env {
	return &Env{names: names, vals: vals, parent: parent}
}

// Bind adds one binding (used incrementally during evaluation).
func (e *Env) Bind(name string, v adm.Value) {
	e.names = append(e.names, name)
	e.vals = append(e.vals, v)
}

// Lookup resolves a variable.
func (e *Env) Lookup(name string) (adm.Value, bool) {
	for env := e; env != nil; env = env.parent {
		for i := len(env.names) - 1; i >= 0; i-- {
			if env.names[i] == name {
				return env.vals[i], true
			}
		}
	}
	return nil, false
}

// DataSource abstracts a scannable dataset for the evaluator and job
// generator (implemented by core's dataset manager).
type DataSource interface {
	Name() string
	Partitions() int
	// ScanPartition emits every record of one partition.
	ScanPartition(part int, emit func(rec adm.Value) error) error
}

// Catalog resolves dataset names and their indexes.
type Catalog interface {
	Resolve(name string) (DataSource, bool)
	// ResolveIndex returns an index on dataset.field of the given kind
	// ("" = any kind).
	ResolveIndex(dataset, field string) (IndexAccessor, bool)
}

// IndexAccessor abstracts a secondary index for index-accelerated scans.
type IndexAccessor interface {
	Kind() string // BTREE, RTREE, KEYWORD, ZORDER, HILBERT, GRID
	// SearchRange emits records with lo <= field <= hi (nil = unbounded);
	// inclusivity flags apply when bounds are non-nil.
	SearchRange(part int, lo, hi adm.Value, loInc, hiInc bool, emit func(rec adm.Value) error) error
	// SearchSpatial emits records whose indexed point intersects rect.
	SearchSpatial(part int, rect adm.Rectangle, emit func(rec adm.Value) error) error
	// SearchKeyword emits records whose indexed text contains the token.
	SearchKeyword(part int, token string, emit func(rec adm.Value) error) error
}

// EvalError is a runtime type/evaluation error.
type EvalError struct{ Msg string }

func (e *EvalError) Error() string { return "eval: " + e.Msg }

func evalErrf(format string, args ...any) error {
	return &EvalError{Msg: fmt.Sprintf(format, args...)}
}

// Evaluator evaluates SQL++ expressions against environments; nested
// SELECT blocks are interpreted serially (the runtime analogue of
// AsterixDB subplans), while top-level queries go through job generation.
type Evaluator struct {
	Catalog Catalog
	// Now is the statement's evaluation timestamp (current_datetime()).
	Now adm.Datetime
}

// Eval evaluates e in env.
func (ev *Evaluator) Eval(e sqlpp.Expr, env *Env) (adm.Value, error) {
	switch x := e.(type) {
	case *sqlpp.Literal:
		return x.Value, nil

	case *sqlpp.VarRef:
		if v, ok := env.Lookup(x.Name); ok {
			return v, nil
		}
		// A bare name can reference a dataset (materialized on demand;
		// the optimizer rewrites the hot paths into joins/scans).
		if ev.Catalog != nil {
			if ds, ok := ev.Catalog.Resolve(x.Name); ok {
				return ev.materialize(ds)
			}
		}
		return nil, evalErrf("undefined variable %q", x.Name)

	case *sqlpp.FieldAccess:
		base, err := ev.Eval(x.Base, env)
		if err != nil {
			return nil, err
		}
		switch b := base.(type) {
		case *adm.Object:
			return b.Get(x.Field), nil
		}
		if base.Kind() <= adm.KindNull {
			return adm.Missing, nil
		}
		return adm.Missing, nil

	case *sqlpp.IndexAccess:
		base, err := ev.Eval(x.Base, env)
		if err != nil {
			return nil, err
		}
		idx, err := ev.Eval(x.Index, env)
		if err != nil {
			return nil, err
		}
		i, ok := adm.AsInt(idx)
		if !ok {
			return adm.Missing, nil
		}
		switch b := base.(type) {
		case adm.Array:
			if i < 0 || int(i) >= len(b) {
				return adm.Missing, nil
			}
			return b[i], nil
		case adm.Multiset:
			if i < 0 || int(i) >= len(b) {
				return adm.Missing, nil
			}
			return b[i], nil
		}
		return adm.Missing, nil

	case *sqlpp.Unary:
		v, err := ev.Eval(x.X, env)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			switch n := v.(type) {
			case adm.Int64:
				return -n, nil
			case adm.Double:
				return -n, nil
			}
			if v.Kind() <= adm.KindNull {
				return v, nil
			}
			return nil, evalErrf("cannot negate %s", v.Kind())
		case "NOT":
			b, known := adm.Truthy(v)
			if !known {
				if v.Kind() == adm.KindMissing {
					return adm.Missing, nil
				}
				return adm.Null, nil
			}
			return adm.Boolean(!b), nil
		}
		return nil, evalErrf("unknown unary op %s", x.Op)

	case *sqlpp.Binary:
		return ev.evalBinary(x, env)

	case *sqlpp.IsExpr:
		v, err := ev.Eval(x.X, env)
		if err != nil {
			return nil, err
		}
		var res bool
		switch x.What {
		case "NULL":
			res = v.Kind() == adm.KindNull
		case "MISSING":
			res = v.Kind() == adm.KindMissing
		case "UNKNOWN":
			res = v.Kind() <= adm.KindNull
		}
		if x.Negate {
			res = !res
		}
		return adm.Boolean(res), nil

	case *sqlpp.Between:
		v, err := ev.Eval(x.X, env)
		if err != nil {
			return nil, err
		}
		lo, err := ev.Eval(x.Lo, env)
		if err != nil {
			return nil, err
		}
		hi, err := ev.Eval(x.Hi, env)
		if err != nil {
			return nil, err
		}
		if v.Kind() <= adm.KindNull || lo.Kind() <= adm.KindNull || hi.Kind() <= adm.KindNull {
			return adm.Null, nil
		}
		in := adm.Compare(v, lo) >= 0 && adm.Compare(v, hi) <= 0
		if x.Negate {
			in = !in
		}
		return adm.Boolean(in), nil

	case *sqlpp.InExpr:
		v, err := ev.Eval(x.X, env)
		if err != nil {
			return nil, err
		}
		coll, err := ev.Eval(x.Coll, env)
		if err != nil {
			return nil, err
		}
		elems, ok := asCollection(coll)
		if !ok {
			return adm.Null, nil
		}
		found := false
		for _, e := range elems {
			if adm.Compare(e, v) == 0 {
				found = true
				break
			}
		}
		if x.Negate {
			found = !found
		}
		return adm.Boolean(found), nil

	case *sqlpp.CaseExpr:
		if x.Operand != nil {
			op, err := ev.Eval(x.Operand, env)
			if err != nil {
				return nil, err
			}
			for _, wt := range x.Whens {
				w, err := ev.Eval(wt.When, env)
				if err != nil {
					return nil, err
				}
				if adm.Compare(op, w) == 0 {
					return ev.Eval(wt.Then, env)
				}
			}
		} else {
			for _, wt := range x.Whens {
				w, err := ev.Eval(wt.When, env)
				if err != nil {
					return nil, err
				}
				if b, known := adm.Truthy(w); known && b {
					return ev.Eval(wt.Then, env)
				}
			}
		}
		if x.Else != nil {
			return ev.Eval(x.Else, env)
		}
		return adm.Null, nil

	case *sqlpp.QuantifiedExpr:
		coll, err := ev.Eval(x.In, env)
		if err != nil {
			return nil, err
		}
		elems, ok := asCollection(coll)
		if !ok {
			return adm.Null, nil
		}
		for _, el := range elems {
			child := NewEnv(env, []string{x.Var}, []adm.Value{el})
			p, err := ev.Eval(x.Satisfies, child)
			if err != nil {
				return nil, err
			}
			b, known := adm.Truthy(p)
			if x.Some && known && b {
				return adm.Boolean(true), nil
			}
			if !x.Some && (!known || !b) {
				return adm.Boolean(false), nil
			}
		}
		return adm.Boolean(!x.Some), nil

	case *sqlpp.ExistsExpr:
		v, err := ev.Eval(x.X, env)
		if err != nil {
			return nil, err
		}
		elems, ok := asCollection(v)
		res := ok && len(elems) > 0
		if x.Negate {
			res = !res
		}
		return adm.Boolean(res), nil

	case *sqlpp.ObjectConstructor:
		o := adm.NewObject()
		for _, f := range x.Fields {
			nv, err := ev.Eval(f.Name, env)
			if err != nil {
				return nil, err
			}
			name, ok := nv.(adm.String)
			if !ok {
				return nil, evalErrf("object field name must be a string, got %s", nv.Kind())
			}
			v, err := ev.Eval(f.Value, env)
			if err != nil {
				return nil, err
			}
			if v.Kind() == adm.KindMissing {
				continue // missing fields are simply absent
			}
			o.Set(string(name), v)
		}
		return o, nil

	case *sqlpp.ArrayConstructor:
		a := make(adm.Array, 0, len(x.Elems))
		for _, el := range x.Elems {
			v, err := ev.Eval(el, env)
			if err != nil {
				return nil, err
			}
			a = append(a, v)
		}
		return a, nil

	case *sqlpp.MultisetConstructor:
		m := make(adm.Multiset, 0, len(x.Elems))
		for _, el := range x.Elems {
			v, err := ev.Eval(el, env)
			if err != nil {
				return nil, err
			}
			m = append(m, v)
		}
		return m, nil

	case *sqlpp.Call:
		return ev.evalCall(x, env)

	case *sqlpp.SelectExpr:
		// Nested query block: interpret serially (subplan execution).
		rows, err := ev.interpretSelect(x, env)
		if err != nil {
			return nil, err
		}
		return adm.Array(rows), nil

	case *sqlpp.UnionExpr:
		var all adm.Array
		for _, b := range x.Blocks {
			v, err := ev.Eval(b, env)
			if err != nil {
				return nil, err
			}
			elems, ok := asCollection(v)
			if !ok {
				return nil, evalErrf("UNION ALL branch produced %s", v.Kind())
			}
			all = append(all, elems...)
		}
		return all, nil
	}
	return nil, evalErrf("unsupported expression %T", e)
}

func (ev *Evaluator) evalBinary(x *sqlpp.Binary, env *Env) (adm.Value, error) {
	// AND/OR have three-valued logic with short circuit.
	if x.Op == "AND" || x.Op == "OR" {
		l, err := ev.Eval(x.L, env)
		if err != nil {
			return nil, err
		}
		lb, lknown := adm.Truthy(l)
		if x.Op == "AND" {
			if lknown && !lb {
				return adm.Boolean(false), nil
			}
		} else {
			if lknown && lb {
				return adm.Boolean(true), nil
			}
		}
		r, err := ev.Eval(x.R, env)
		if err != nil {
			return nil, err
		}
		rb, rknown := adm.Truthy(r)
		if x.Op == "AND" {
			if rknown && !rb {
				return adm.Boolean(false), nil
			}
			if lknown && rknown {
				return adm.Boolean(true), nil
			}
			return adm.Null, nil
		}
		if rknown && rb {
			return adm.Boolean(true), nil
		}
		if lknown && rknown {
			return adm.Boolean(false), nil
		}
		return adm.Null, nil
	}

	l, err := ev.Eval(x.L, env)
	if err != nil {
		return nil, err
	}
	r, err := ev.Eval(x.R, env)
	if err != nil {
		return nil, err
	}
	// null/missing propagation.
	if l.Kind() == adm.KindMissing || r.Kind() == adm.KindMissing {
		return adm.Missing, nil
	}
	if l.Kind() == adm.KindNull || r.Kind() == adm.KindNull {
		return adm.Null, nil
	}

	switch x.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		c := adm.Compare(l, r)
		var res bool
		switch x.Op {
		case "=":
			res = c == 0
		case "!=":
			res = c != 0
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
		return adm.Boolean(res), nil
	case "||":
		ls, lok := l.(adm.String)
		rs, rok := r.(adm.String)
		if !lok || !rok {
			return nil, evalErrf("|| requires strings, got %s and %s", l.Kind(), r.Kind())
		}
		return ls + rs, nil
	case "LIKE":
		ls, lok := l.(adm.String)
		rs, rok := r.(adm.String)
		if !lok || !rok {
			return adm.Null, nil
		}
		return adm.Boolean(likeMatch(string(ls), string(rs))), nil
	case "+", "-", "*", "/", "%":
		return ev.arith(x.Op, l, r)
	}
	return nil, evalErrf("unknown operator %s", x.Op)
}

func (ev *Evaluator) arith(op string, l, r adm.Value) (adm.Value, error) {
	// datetime/duration arithmetic.
	if ldt, ok := l.(adm.Datetime); ok {
		if rd, ok := r.(adm.Duration); ok {
			switch op {
			case "+":
				return adm.AddDuration(ldt, rd), nil
			case "-":
				return adm.SubDuration(ldt, rd), nil
			}
		}
		if rdt, ok := r.(adm.Datetime); ok && op == "-" {
			return adm.Duration{Millis: int64(ldt) - int64(rdt)}, nil
		}
	}
	li, lIsInt := l.(adm.Int64)
	ri, rIsInt := r.(adm.Int64)
	if lIsInt && rIsInt {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "/":
			if ri == 0 {
				return adm.Null, nil
			}
			if li%ri == 0 {
				return li / ri, nil
			}
			return adm.Double(float64(li) / float64(ri)), nil
		case "%":
			if ri == 0 {
				return adm.Null, nil
			}
			return li % ri, nil
		}
	}
	lf, lok := adm.AsFloat(l)
	rf, rok := adm.AsFloat(r)
	if !lok || !rok {
		return nil, evalErrf("cannot apply %s to %s and %s", op, l.Kind(), r.Kind())
	}
	switch op {
	case "+":
		return adm.Double(lf + rf), nil
	case "-":
		return adm.Double(lf - rf), nil
	case "*":
		return adm.Double(lf * rf), nil
	case "/":
		if rf == 0 {
			return adm.Null, nil
		}
		return adm.Double(lf / rf), nil
	case "%":
		if rf == 0 {
			return adm.Null, nil
		}
		return adm.Double(float64(int64(lf) % int64(rf))), nil
	}
	return nil, evalErrf("unknown arithmetic op %s", op)
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(s, pattern string) bool {
	// Dynamic programming over the pattern.
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

// asCollection views arrays and multisets as element slices.
func asCollection(v adm.Value) ([]adm.Value, bool) {
	switch x := v.(type) {
	case adm.Array:
		return x, true
	case adm.Multiset:
		return x, true
	}
	return nil, false
}

// materialize scans a whole dataset into an array (fallback path for
// datasets referenced in expression position).
func (ev *Evaluator) materialize(ds DataSource) (adm.Value, error) {
	var out adm.Array
	for p := 0; p < ds.Partitions(); p++ {
		err := ds.ScanPartition(p, func(rec adm.Value) error {
			out = append(out, rec)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// IsAggregateFn reports whether a function name is a SQL aggregate
// (meaningful only under GROUP BY / global aggregation).
func IsAggregateFn(fn string) bool {
	switch strings.ToLower(fn) {
	case "count", "sum", "min", "max", "avg", "array_agg":
		return true
	}
	return false
}
