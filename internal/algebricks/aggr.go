package algebricks

import (
	"fmt"

	"asterix/internal/sqlpp"
)

// AggRef is one SQL-style aggregate occurrence extracted from a grouped
// query's SELECT/HAVING/ORDER expressions and replaced by a variable
// reference; the group-by operator computes it.
type AggRef struct {
	Var      string
	Fn       string // count, sum, min, max, avg, array_agg
	Arg      sqlpp.Expr
	Star     bool // COUNT(*)
	Distinct bool
}

// ExtractAggregates rewrites aggregate calls in e into fresh variables,
// appending their definitions to aggs. Nested SELECT blocks are left
// untouched (their aggregates belong to them).
func ExtractAggregates(e sqlpp.Expr, gen *int, aggs *[]AggRef) sqlpp.Expr {
	switch x := e.(type) {
	case *sqlpp.Call:
		if IsAggregateFn(x.Fn) {
			ref := AggRef{Fn: x.Fn, Distinct: x.Distinct}
			if len(x.Args) == 0 {
				ref.Star = true
			} else {
				ref.Arg = x.Args[0]
			}
			*gen++
			ref.Var = fmt.Sprintf("$agg%d", *gen)
			*aggs = append(*aggs, ref)
			return &sqlpp.VarRef{Name: ref.Var}
		}
		out := &sqlpp.Call{Fn: x.Fn, Distinct: x.Distinct}
		for _, a := range x.Args {
			out.Args = append(out.Args, ExtractAggregates(a, gen, aggs))
		}
		return out
	case *sqlpp.FieldAccess:
		return &sqlpp.FieldAccess{Base: ExtractAggregates(x.Base, gen, aggs), Field: x.Field}
	case *sqlpp.IndexAccess:
		return &sqlpp.IndexAccess{
			Base:  ExtractAggregates(x.Base, gen, aggs),
			Index: ExtractAggregates(x.Index, gen, aggs),
		}
	case *sqlpp.Unary:
		return &sqlpp.Unary{Op: x.Op, X: ExtractAggregates(x.X, gen, aggs)}
	case *sqlpp.Binary:
		return &sqlpp.Binary{Op: x.Op,
			L: ExtractAggregates(x.L, gen, aggs),
			R: ExtractAggregates(x.R, gen, aggs)}
	case *sqlpp.IsExpr:
		return &sqlpp.IsExpr{X: ExtractAggregates(x.X, gen, aggs), What: x.What, Negate: x.Negate}
	case *sqlpp.Between:
		return &sqlpp.Between{
			X:      ExtractAggregates(x.X, gen, aggs),
			Lo:     ExtractAggregates(x.Lo, gen, aggs),
			Hi:     ExtractAggregates(x.Hi, gen, aggs),
			Negate: x.Negate,
		}
	case *sqlpp.InExpr:
		return &sqlpp.InExpr{
			X:      ExtractAggregates(x.X, gen, aggs),
			Coll:   ExtractAggregates(x.Coll, gen, aggs),
			Negate: x.Negate,
		}
	case *sqlpp.CaseExpr:
		out := &sqlpp.CaseExpr{}
		if x.Operand != nil {
			out.Operand = ExtractAggregates(x.Operand, gen, aggs)
		}
		for _, wt := range x.Whens {
			out.Whens = append(out.Whens, sqlpp.WhenThen{
				When: ExtractAggregates(wt.When, gen, aggs),
				Then: ExtractAggregates(wt.Then, gen, aggs),
			})
		}
		if x.Else != nil {
			out.Else = ExtractAggregates(x.Else, gen, aggs)
		}
		return out
	case *sqlpp.ObjectConstructor:
		out := &sqlpp.ObjectConstructor{}
		for _, f := range x.Fields {
			out.Fields = append(out.Fields, sqlpp.ObjectField{
				Name:  ExtractAggregates(f.Name, gen, aggs),
				Value: ExtractAggregates(f.Value, gen, aggs),
			})
		}
		return out
	case *sqlpp.ArrayConstructor:
		out := &sqlpp.ArrayConstructor{}
		for _, el := range x.Elems {
			out.Elems = append(out.Elems, ExtractAggregates(el, gen, aggs))
		}
		return out
	case *sqlpp.MultisetConstructor:
		out := &sqlpp.MultisetConstructor{}
		for _, el := range x.Elems {
			out.Elems = append(out.Elems, ExtractAggregates(el, gen, aggs))
		}
		return out
	case *sqlpp.QuantifiedExpr:
		return &sqlpp.QuantifiedExpr{
			Some: x.Some, Var: x.Var,
			In:        ExtractAggregates(x.In, gen, aggs),
			Satisfies: x.Satisfies, // quantifier body has its own scope
		}
	default:
		return e
	}
}

// HasAggregates reports whether the expression contains a SQL aggregate
// call at this block's level.
func HasAggregates(e sqlpp.Expr) bool {
	var aggs []AggRef
	gen := 0
	ExtractAggregates(e, &gen, &aggs)
	return len(aggs) > 0
}

// SubstituteVars rewrites VarRefs per the mapping (used to inline SELECT
// aliases into ORDER BY and to rewrite quantifier rewrites).
func SubstituteVars(e sqlpp.Expr, mapping map[string]sqlpp.Expr) sqlpp.Expr {
	switch x := e.(type) {
	case *sqlpp.VarRef:
		if r, ok := mapping[x.Name]; ok {
			return r
		}
		return x
	case *sqlpp.FieldAccess:
		return &sqlpp.FieldAccess{Base: SubstituteVars(x.Base, mapping), Field: x.Field}
	case *sqlpp.IndexAccess:
		return &sqlpp.IndexAccess{Base: SubstituteVars(x.Base, mapping), Index: SubstituteVars(x.Index, mapping)}
	case *sqlpp.Call:
		out := &sqlpp.Call{Fn: x.Fn, Distinct: x.Distinct}
		for _, a := range x.Args {
			out.Args = append(out.Args, SubstituteVars(a, mapping))
		}
		return out
	case *sqlpp.Unary:
		return &sqlpp.Unary{Op: x.Op, X: SubstituteVars(x.X, mapping)}
	case *sqlpp.Binary:
		return &sqlpp.Binary{Op: x.Op, L: SubstituteVars(x.L, mapping), R: SubstituteVars(x.R, mapping)}
	case *sqlpp.IsExpr:
		return &sqlpp.IsExpr{X: SubstituteVars(x.X, mapping), What: x.What, Negate: x.Negate}
	case *sqlpp.Between:
		return &sqlpp.Between{X: SubstituteVars(x.X, mapping), Lo: SubstituteVars(x.Lo, mapping), Hi: SubstituteVars(x.Hi, mapping), Negate: x.Negate}
	case *sqlpp.InExpr:
		return &sqlpp.InExpr{X: SubstituteVars(x.X, mapping), Coll: SubstituteVars(x.Coll, mapping), Negate: x.Negate}
	case *sqlpp.CaseExpr:
		out := &sqlpp.CaseExpr{}
		if x.Operand != nil {
			out.Operand = SubstituteVars(x.Operand, mapping)
		}
		for _, wt := range x.Whens {
			out.Whens = append(out.Whens, sqlpp.WhenThen{
				When: SubstituteVars(wt.When, mapping),
				Then: SubstituteVars(wt.Then, mapping),
			})
		}
		if x.Else != nil {
			out.Else = SubstituteVars(x.Else, mapping)
		}
		return out
	case *sqlpp.ObjectConstructor:
		out := &sqlpp.ObjectConstructor{}
		for _, f := range x.Fields {
			out.Fields = append(out.Fields, sqlpp.ObjectField{
				Name:  SubstituteVars(f.Name, mapping),
				Value: SubstituteVars(f.Value, mapping),
			})
		}
		return out
	case *sqlpp.ArrayConstructor:
		out := &sqlpp.ArrayConstructor{}
		for _, el := range x.Elems {
			out.Elems = append(out.Elems, SubstituteVars(el, mapping))
		}
		return out
	case *sqlpp.MultisetConstructor:
		out := &sqlpp.MultisetConstructor{}
		for _, el := range x.Elems {
			out.Elems = append(out.Elems, SubstituteVars(el, mapping))
		}
		return out
	case *sqlpp.QuantifiedExpr:
		inner := make(map[string]sqlpp.Expr, len(mapping))
		for k, v := range mapping {
			if k != x.Var {
				inner[k] = v
			}
		}
		return &sqlpp.QuantifiedExpr{Some: x.Some, Var: x.Var,
			In: SubstituteVars(x.In, mapping), Satisfies: SubstituteVars(x.Satisfies, inner)}
	case *sqlpp.ExistsExpr:
		return &sqlpp.ExistsExpr{X: SubstituteVars(x.X, mapping), Negate: x.Negate}
	default:
		return e
	}
}

// FreeVars collects variable names referenced by e that are not bound
// within it (nested scopes subtracted approximately: quantifier vars and
// nested SELECT aliases are treated as bound).
func FreeVars(e sqlpp.Expr, out map[string]bool) {
	switch x := e.(type) {
	case *sqlpp.VarRef:
		out[x.Name] = true
	case *sqlpp.FieldAccess:
		FreeVars(x.Base, out)
	case *sqlpp.IndexAccess:
		FreeVars(x.Base, out)
		FreeVars(x.Index, out)
	case *sqlpp.Call:
		for _, a := range x.Args {
			FreeVars(a, out)
		}
	case *sqlpp.Unary:
		FreeVars(x.X, out)
	case *sqlpp.Binary:
		FreeVars(x.L, out)
		FreeVars(x.R, out)
	case *sqlpp.IsExpr:
		FreeVars(x.X, out)
	case *sqlpp.Between:
		FreeVars(x.X, out)
		FreeVars(x.Lo, out)
		FreeVars(x.Hi, out)
	case *sqlpp.InExpr:
		FreeVars(x.X, out)
		FreeVars(x.Coll, out)
	case *sqlpp.CaseExpr:
		if x.Operand != nil {
			FreeVars(x.Operand, out)
		}
		for _, wt := range x.Whens {
			FreeVars(wt.When, out)
			FreeVars(wt.Then, out)
		}
		if x.Else != nil {
			FreeVars(x.Else, out)
		}
	case *sqlpp.ObjectConstructor:
		for _, f := range x.Fields {
			FreeVars(f.Name, out)
			FreeVars(f.Value, out)
		}
	case *sqlpp.ArrayConstructor:
		for _, el := range x.Elems {
			FreeVars(el, out)
		}
	case *sqlpp.MultisetConstructor:
		for _, el := range x.Elems {
			FreeVars(el, out)
		}
	case *sqlpp.QuantifiedExpr:
		FreeVars(x.In, out)
		inner := map[string]bool{}
		FreeVars(x.Satisfies, inner)
		delete(inner, x.Var)
		for k := range inner {
			out[k] = true
		}
	case *sqlpp.ExistsExpr:
		FreeVars(x.X, out)
	case *sqlpp.SelectExpr:
		inner := map[string]bool{}
		bound := map[string]bool{}
		for _, w := range x.With {
			FreeVars(w.Expr, inner)
			bound[w.Var] = true
		}
		for _, ft := range x.From {
			FreeVars(ft.Expr, inner)
			bound[ft.Alias] = true
			for _, l := range ft.Links {
				FreeVars(l.Expr, inner)
				bound[l.Alias] = true
				if l.On != nil {
					FreeVars(l.On, inner)
				}
			}
		}
		for _, lc := range x.Lets {
			FreeVars(lc.Expr, inner)
			bound[lc.Var] = true
		}
		if x.Where != nil {
			FreeVars(x.Where, inner)
		}
		for _, gk := range x.GroupBy {
			FreeVars(gk.Expr, inner)
			bound[gk.Alias] = true
		}
		if x.GroupAs != "" {
			bound[x.GroupAs] = true
		}
		if x.Having != nil {
			FreeVars(x.Having, inner)
		}
		if x.Select.Value != nil {
			FreeVars(x.Select.Value, inner)
		}
		for _, it := range x.Select.Items {
			FreeVars(it.Expr, inner)
		}
		for _, oi := range x.OrderBy {
			FreeVars(oi.Expr, inner)
		}
		if x.Limit != nil {
			FreeVars(x.Limit, inner)
		}
		if x.Offset != nil {
			FreeVars(x.Offset, inner)
		}
		for k := range inner {
			if !bound[k] {
				out[k] = true
			}
		}
	}
}
