package algebricks

import (
	"testing"

	"asterix/internal/adm"
)

// Three-valued logic truth table for AND/OR with null/missing operands.
func TestThreeValuedLogic(t *testing.T) {
	ev := newEval(nil)
	cases := []struct {
		src, want string
	}{
		{`true AND null`, `null`},
		{`false AND null`, `false`},
		{`null AND null`, `null`},
		{`true OR null`, `true`},
		{`false OR null`, `null`},
		{`null OR null`, `null`},
		{`true AND missing`, `null`},
		{`false OR missing`, `null`},
		{`NOT null`, `null`},
		{`NOT missing`, `missing`},
		{`missing AND false`, `false`},
		{`missing OR true`, `true`},
	}
	for _, c := range cases {
		got := evalStr(t, ev, "SELECT VALUE "+c.src+" FROM [0] one")
		if got.(adm.Array)[0].String() != c.want {
			t.Errorf("%s = %s, want %s", c.src, got.(adm.Array)[0], c.want)
		}
	}
}

func TestNullMissingPropagation(t *testing.T) {
	ev := newEval(nil)
	cases := []struct {
		src, want string
	}{
		{`1 + null`, `null`},
		{`1 + missing`, `missing`},
		{`null || "x"`, `null`},
		{`missing < 3`, `missing`},
		{`null BETWEEN 1 AND 2`, `null`},
		{`"x" LIKE null`, `null`},
		{`-null`, `null`},
		{`5 IN null`, `null`},
		{`coll_count(null)`, `null`},
		{`upper(missing)`, `null`},
	}
	for _, c := range cases {
		got := evalStr(t, ev, "SELECT VALUE "+c.src+" FROM [0] one")
		if got.(adm.Array)[0].String() != c.want {
			t.Errorf("%s = %s, want %s", c.src, got.(adm.Array)[0], c.want)
		}
	}
}

func TestMissingFieldsOmittedFromObjects(t *testing.T) {
	ev := newEval(nil)
	got := evalStr(t, ev, `SELECT VALUE {"a": 1, "b": missing, "c": null} FROM [0] one`)
	o := got.(adm.Array)[0].(*adm.Object)
	if o.Has("b") {
		t.Error("missing-valued field must be omitted from constructed objects")
	}
	if !o.Has("c") || o.Get("c").Kind() != adm.KindNull {
		t.Error("null-valued field must be kept")
	}
}

func TestComputedObjectFieldNames(t *testing.T) {
	ev := newEval(nil)
	got := evalStr(t, ev, `SELECT VALUE {"k" || "1": 10} FROM [0] one`)
	o := got.(adm.Array)[0].(*adm.Object)
	if v, _ := adm.AsInt(o.Get("k1")); v != 10 {
		t.Errorf("computed field name: %v", o)
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	ev := newEval(nil)
	cases := []struct{ src, want string }{
		{`1 / 0`, `null`},
		{`1.5 / 0`, `null`},
		{`7 % 0`, `null`},
		{`7 / 2`, `3.5`},
		{`8 / 2`, `4`},
	}
	for _, c := range cases {
		got := evalStr(t, ev, "SELECT VALUE "+c.src+" FROM [0] one")
		if got.(adm.Array)[0].String() != c.want {
			t.Errorf("%s = %s, want %s", c.src, got.(adm.Array)[0], c.want)
		}
	}
}

func TestQuantifierEmptyCollection(t *testing.T) {
	ev := newEval(nil)
	got := evalStr(t, ev, `SELECT VALUE SOME x IN [] SATISFIES x > 0 FROM [0] one`)
	if got.(adm.Array)[0].String() != "false" {
		t.Error("SOME over empty is false")
	}
	got = evalStr(t, ev, `SELECT VALUE EVERY x IN [] SATISFIES x > 0 FROM [0] one`)
	if got.(adm.Array)[0].String() != "true" {
		t.Error("EVERY over empty is true")
	}
}

func TestDatetimeArithmetic(t *testing.T) {
	ev := newEval(nil)
	got := evalStr(t, ev, `SELECT VALUE datetime("2019-04-01T00:00:00") - datetime("2019-03-02T00:00:00") FROM [0] one`)
	if got.(adm.Array)[0].String() != `duration("P30D")` {
		t.Errorf("datetime difference: %s", got.(adm.Array)[0])
	}
}
