package algebricks

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asterix/internal/adm"
	"asterix/internal/obs"
	"asterix/internal/sqlpp"
)

// testCatalog3 extends testCatalog with a third dataset (for join-order
// clusters) and secondary indexes (for access-path selection).
func testCatalog3() *memCatalog {
	cat := testCatalog()
	likes := &memSource{name: "Likes", par: 2}
	for i := 0; i < 100; i++ {
		likes.recs = append(likes.recs, adm.NewObject(
			adm.Field{Name: "lid", Value: adm.Int64(i)},
			adm.Field{Name: "mid", Value: adm.Int64(i % 50)},
			adm.Field{Name: "uid", Value: adm.Int64(i % 20)},
		))
	}
	cat.sources["Likes"] = likes
	cat.indexes = map[string]IndexAccessor{
		"Users.age": &memIndex{src: cat.sources["Users"], field: "age", kind: "BTREE"},
	}
	return cat
}

// optimize translates src and runs the full default pipeline, returning
// the plan and the optimizer report.
func optimizeQuery(t *testing.T, cat Catalog, src string) (Op, OptReport) {
	t.Helper()
	q, err := sqlpp.ParseQuery(src + ";")
	if err != nil {
		t.Fatal(err)
	}
	tr := &Translator{Ev: newEval(cat), Catalog: cat}
	plan, err := tr.Translate(q.Body.(*sqlpp.SelectExpr))
	if err != nil {
		t.Fatal(err)
	}
	out, rep := NewOptimizer(nil).Optimize(tr, plan)
	return out, rep
}

// --- Golden plan tests ---
//
// Each case's optimized plan text is compared against
// testdata/plans/<name>.golden; regenerate with
//
//	ASTERIX_UPDATE_GOLDEN=1 go test ./internal/algebricks -run TestGoldenPlans

func TestGoldenPlans(t *testing.T) {
	update := os.Getenv("ASTERIX_UPDATE_GOLDEN") != ""
	cat := testCatalog3()
	cases := []struct {
		name string
		src  string
	}{
		{"scan_filter", `SELECT VALUE u.name FROM Users u WHERE u.id < 3`},
		{"constant_fold", `SELECT VALUE u.id FROM Users u WHERE u.id < 1 + 2 AND 1 = 1`},
		{"hash_join", `SELECT u.name, m.mid FROM Users u, Messages m WHERE m.authorId = u.id AND u.age > 21`},
		{"commuted_join", `SELECT u.name, m.mid FROM Users u, Messages m WHERE u.id = m.authorId`},
		{"index_btree", `SELECT VALUE u.name FROM Users u WHERE u.age >= 22 AND u.age <= 23`},
		{"limit_into_scan", `SELECT VALUE u.name FROM Users u LIMIT 5`},
		{"three_way_greedy", `SELECT u.name, m.mid, l.lid FROM Users u, Messages m, Likes l
			WHERE m.authorId = u.id AND l.mid = m.mid AND u.id = 7`},
		{"group_after_join", `SELECT u.name AS name, COUNT(m) AS cnt
			FROM Users u JOIN Messages m ON m.authorId = u.id GROUP BY u.name AS name`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			plan, rep := optimizeQuery(t, cat, c.src)
			if rep.BudgetExhausted {
				t.Errorf("optimizer hit pass budget (passes=%d)", rep.Passes)
			}
			got := PlanString(plan)
			path := filepath.Join("testdata", "plans", c.name+".golden")
			if update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (regenerate with ASTERIX_UPDATE_GOLDEN=1): %v", err)
			}
			if got != string(want) {
				t.Errorf("plan drifted from golden %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

// Plan text and JSON tree must agree on structure.
func TestPlanJSONMatchesText(t *testing.T) {
	plan, _ := optimizeQuery(t, testCatalog3(),
		`SELECT u.name, m.mid FROM Users u, Messages m WHERE m.authorId = u.id`)
	tree := PlanTree(plan)
	var count func(*PlanNode) int
	count = func(n *PlanNode) int {
		total := 1
		for _, in := range n.Inputs {
			total += count(in)
		}
		return total
	}
	var ops int
	var walk func(Op)
	walk = func(op Op) {
		ops++
		for _, in := range op.Inputs() {
			walk(in)
		}
	}
	walk(plan)
	if got := count(tree); got != ops {
		t.Errorf("JSON tree has %d nodes, plan has %d", got, ops)
	}
	if !strings.Contains(PlanJSON(plan), `"op":"join"`) {
		t.Errorf("JSON plan missing join node: %s", PlanJSON(plan))
	}
}

// --- recognize-hash-join regressions ---

func planFor(t *testing.T, src string) string {
	t.Helper()
	plan, _ := optimizeQuery(t, testCatalog3(), src)
	return PlanString(plan)
}

// The original recognizer only matched left-var = right-var in source
// order; commuted equalities must extract keys too.
func TestHashJoinCommutedEquality(t *testing.T) {
	s := planFor(t, `SELECT u.name, m.mid FROM Users u, Messages m WHERE u.id = m.authorId`)
	if !strings.Contains(s, "join[inner,hash]") {
		t.Errorf("commuted equality not recognized:\n%s", s)
	}
}

// Parenthesized AND nesting must flatten into conjuncts before matching.
func TestHashJoinNestedConjunction(t *testing.T) {
	s := planFor(t, `SELECT u.name, m.mid FROM Users u, Messages m
		WHERE (m.authorId = u.id AND u.age > 21) AND m.len > 10`)
	if !strings.Contains(s, "join[inner,hash]") {
		t.Errorf("nested conjunction not recognized:\n%s", s)
	}
	// Both residual filters push below the join.
	if i := strings.Index(s, "join["); strings.LastIndex(s, "select") < i {
		t.Errorf("residual filters not pushed below join:\n%s", s)
	}
}

// An equality against a constant is a filter, not a join key: u.age = 21
// must never become a hash-join key (it references only one side — and a
// constant pseudo-key would hash every row to one bucket of equal values,
// silently joining on nothing).
func TestHashJoinConstantEqualityIsNotAKey(t *testing.T) {
	s := planFor(t, `SELECT u.name, m.mid FROM Users u, Messages m
		WHERE u.age = 21 AND m.authorId = u.id`)
	if !strings.Contains(s, "join[inner,hash]") {
		t.Errorf("expected hash join:\n%s", s)
	}
	if strings.Contains(s, "21 = ") || strings.Contains(s, "= 21]") {
		t.Errorf("constant equality leaked into join keys:\n%s", s)
	}
	// Exactly one key pair: authorId = id.
	if strings.Count(s, "$jkl") > 2 { // one assign + one keys= mention
		t.Errorf("unexpected extra join keys:\n%s", s)
	}
}

// A same-side equality (two columns of one input) is a local filter, not
// a join key.
func TestHashJoinSameSideEqualityIsNotAKey(t *testing.T) {
	s := planFor(t, `SELECT u.name, m.mid FROM Users u, Messages m
		WHERE m.authorId = m.mid AND m.authorId = u.id`)
	if !strings.Contains(s, "join[inner,hash]") {
		t.Errorf("expected hash join:\n%s", s)
	}
	if !strings.Contains(s, "select (m.authorId = m.mid)") {
		t.Errorf("same-side equality should stay a filter:\n%s", s)
	}
}

// --- greedy join ordering ---

func TestGreedyJoinOrderThreeWay(t *testing.T) {
	plan, rep := optimizeQuery(t, testCatalog3(), `
		SELECT u.name, m.mid, l.lid FROM Messages m, Likes l, Users u
		WHERE m.authorId = u.id AND l.mid = m.mid AND u.id = 7`)
	if rep.Fired["order-joins-greedily"] == 0 {
		t.Fatalf("greedy ordering did not fire: %v", rep.Fired)
	}
	// Find the top join cluster: expect left-deep (left child of the top
	// join is itself a join, right child is not).
	var top *JoinOp
	var walk func(Op)
	walk = func(op Op) {
		if j, ok := op.(*JoinOp); ok && top == nil {
			top = j
			return
		}
		for _, in := range op.Inputs() {
			walk(in)
		}
	}
	walk(plan)
	if top == nil {
		t.Fatalf("no join in plan:\n%s", PlanString(plan))
	}
	inner, ok := findJoin(top.L)
	if !ok {
		t.Fatalf("plan not left-deep:\n%s", PlanString(plan))
	}
	// Users carries the only local filter (u.id = 7), so the greedy order
	// starts there and joins Messages next (equality on authorId); Likes,
	// connected only through Messages, must join last.
	hasVar := func(schema []string, v string) bool {
		for _, s := range schema {
			if s == v {
				return true
			}
		}
		return false
	}
	if !hasVar(inner.Schema(), "u") || !hasVar(inner.Schema(), "m") {
		t.Errorf("inner join should bind u and m, got schema %v:\n%s", inner.Schema(), PlanString(plan))
	}
	if !hasVar(top.R.Schema(), "l") || hasVar(inner.Schema(), "l") {
		t.Errorf("l should join last, top right schema %v:\n%s", top.R.Schema(), PlanString(plan))
	}
	// After ordering, both joins should be recognized as hash joins.
	if n := strings.Count(PlanString(plan), "join[inner,hash]"); n != 2 {
		t.Errorf("expected 2 hash joins, got %d:\n%s", n, PlanString(plan))
	}
}

// findJoin digs through selects/assigns/projects for a join.
func findJoin(op Op) (*JoinOp, bool) {
	for {
		if j, ok := op.(*JoinOp); ok {
			return j, true
		}
		ins := op.Inputs()
		if len(ins) != 1 {
			return nil, false
		}
		op = ins[0]
	}
}

// A two-way join must not be restructured (cluster minimum is three).
func TestGreedyJoinOrderSkipsTwoWay(t *testing.T) {
	_, rep := optimizeQuery(t, testCatalog3(),
		`SELECT u.name, m.mid FROM Users u, Messages m WHERE m.authorId = u.id`)
	if rep.Fired["order-joins-greedily"] != 0 {
		t.Errorf("ordering fired on a 2-way join: %v", rep.Fired)
	}
}

// --- optimizer framework ---

func TestOptimizerFixpointTerminates(t *testing.T) {
	_, rep := optimizeQuery(t, testCatalog3(), `
		SELECT u.name, m.mid, l.lid FROM Messages m, Likes l, Users u
		WHERE m.authorId = u.id AND l.mid = m.mid AND u.age >= 22 AND u.age <= 23 AND 1 = 1`)
	if rep.BudgetExhausted {
		t.Fatalf("no fixpoint within %d passes; fired: %v", rep.Passes, rep.Fired)
	}
	if rep.Passes >= DefaultMaxPasses {
		t.Errorf("suspiciously many passes: %d", rep.Passes)
	}
}

func TestOptimizerBudgetBounds(t *testing.T) {
	spin := Rule{Name: "spin", Apply: func(tr *Translator, plan Op) (Op, int) {
		return plan, 1 // claims progress forever
	}}
	o := &Optimizer{Rules: []Rule{spin}, MaxPasses: 4}
	plan := &ResultOp{In: &EtsOp{}}
	_, rep := o.Optimize(nil, plan)
	if !rep.BudgetExhausted {
		t.Error("budget exhaustion not reported")
	}
	if rep.Passes != 4 {
		t.Errorf("passes = %d, want 4", rep.Passes)
	}
	if rep.Fired["spin"] != 4 {
		t.Errorf("fired[spin] = %d, want 4", rep.Fired["spin"])
	}
}

func TestOptimizerDisabledRules(t *testing.T) {
	q := `SELECT u.name, m.mid FROM Users u, Messages m WHERE m.authorId = u.id`
	qp, err := sqlpp.ParseQuery(q + ";")
	if err != nil {
		t.Fatal(err)
	}
	cat := testCatalog3()
	tr := &Translator{Ev: newEval(cat), Catalog: cat}
	plan, err := tr.Translate(qp.Body.(*sqlpp.SelectExpr))
	if err != nil {
		t.Fatal(err)
	}
	o := NewOptimizer(nil)
	o.Disabled = map[string]bool{"recognize-hash-join": true}
	out, rep := o.Optimize(tr, plan)
	if strings.Contains(PlanString(out), "join[inner,hash]") {
		t.Errorf("disabled rule still fired:\n%s", PlanString(out))
	}
	if rep.Fired["recognize-hash-join"] != 0 {
		t.Errorf("report counts disabled rule: %v", rep.Fired)
	}
}

func TestOptimizerMetricsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	o := NewOptimizer(reg)
	cat := testCatalog3()
	q, err := sqlpp.ParseQuery(`SELECT u.name, m.mid FROM Users u, Messages m WHERE m.authorId = u.id;`)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Translator{Ev: newEval(cat), Catalog: cat}
	plan, err := tr.Translate(q.Body.(*sqlpp.SelectExpr))
	if err != nil {
		t.Fatal(err)
	}
	_, rep := o.Optimize(tr, plan)
	if rep.TotalFired() == 0 {
		t.Fatal("nothing fired")
	}
	if got := reg.Counter("optimizer_plans_total", "").Value(); got != 1 {
		t.Errorf("optimizer_plans_total = %d, want 1", got)
	}
	if got := reg.Counter("optimizer_rule_recognize_hash_join_fired_total", "").Value(); got != int64(rep.Fired["recognize-hash-join"]) {
		t.Errorf("per-rule counter = %d, report says %d", got, rep.Fired["recognize-hash-join"])
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "optimizer_rule_recognize_hash_join_fired_total") {
		t.Error("per-rule counter missing from prometheus exposition")
	}
}

// Optimizing the same plan twice must be a no-op the second time (rules
// are idempotent at fixpoint).
func TestOptimizerIdempotent(t *testing.T) {
	cat := testCatalog3()
	queries := []string{
		`SELECT u.name, m.mid FROM Users u, Messages m WHERE m.authorId = u.id AND u.age > 21`,
		`SELECT u.name, m.mid, l.lid FROM Messages m, Likes l, Users u
			WHERE m.authorId = u.id AND l.mid = m.mid AND u.id = 7`,
		`SELECT VALUE u.name FROM Users u WHERE u.age >= 22 LIMIT 3`,
	}
	for _, q := range queries {
		plan, _ := optimizeQuery(t, cat, q)
		first := PlanString(plan)
		tr := &Translator{Ev: newEval(cat), Catalog: cat}
		again, rep := NewOptimizer(nil).Optimize(tr, plan)
		if got := PlanString(again); got != first {
			t.Errorf("re-optimizing changed the plan for %q:\n%s\nvs\n%s", q, first, got)
		}
		if rep.TotalFired() != 0 {
			t.Errorf("re-optimizing fired rules for %q: %v", q, rep.Fired)
		}
	}
}

// Index selection must be deterministic across runs (map-iteration order
// must not leak into access-path choice).
func TestIndexSelectionDeterministic(t *testing.T) {
	cat := testCatalog3()
	var first string
	for i := 0; i < 20; i++ {
		plan, _ := optimizeQuery(t, cat, `SELECT VALUE u.name FROM Users u WHERE u.age >= 22 AND u.age <= 23`)
		s := PlanString(plan)
		if i == 0 {
			first = s
			if !strings.Contains(s, "index-search") {
				t.Fatalf("expected index access path:\n%s", s)
			}
		} else if s != first {
			t.Fatalf("nondeterministic plan:\n%s\nvs\n%s", first, s)
		}
	}
}

func TestMetricToken(t *testing.T) {
	if got := metricToken("push-select-down"); got != "push_select_down" {
		t.Errorf("metricToken = %q", got)
	}
}

var _ = fmt.Sprintf // keep fmt for debugging edits
