package algebricks

import (
	"asterix/internal/adm"
	"asterix/internal/sqlpp"
)

// Optimize applies the rule-based rewriter to a logical plan until
// fixpoint (bounded): quantifier-to-semijoin, selection pushdown, join
// recognition (equi-join key extraction), and index-access introduction —
// the Algebricks rule pipeline of Figure 5 in miniature.
func (tr *Translator) Optimize(plan Op) Op {
	for pass := 0; pass < 8; pass++ {
		var changed bool
		plan, changed = tr.rewrite(plan)
		if !changed {
			break
		}
	}
	return plan
}

func (tr *Translator) rewrite(op Op) (Op, bool) {
	changed := false
	// Rewrite children first (bottom-up).
	switch o := op.(type) {
	case *SelectOp:
		in, c := tr.rewrite(o.In)
		o.In, changed = in, c
	case *AssignOp:
		in, c := tr.rewrite(o.In)
		o.In, changed = in, c
	case *UnnestOp:
		in, c := tr.rewrite(o.In)
		o.In, changed = in, c
	case *JoinOp:
		l, c1 := tr.rewrite(o.L)
		r, c2 := tr.rewrite(o.R)
		o.L, o.R = l, r
		changed = c1 || c2
	case *GroupOp:
		in, c := tr.rewrite(o.In)
		o.In, changed = in, c
	case *ResultOp:
		in, c := tr.rewrite(o.In)
		o.In, changed = in, c
	case *DistinctOp:
		in, c := tr.rewrite(o.In)
		o.In, changed = in, c
	case *OrderOp:
		in, c := tr.rewrite(o.In)
		o.In, changed = in, c
	case *LimitOp:
		in, c := tr.rewrite(o.In)
		o.In, changed = in, c
	case *UnionAllOp:
		for i := range o.Ins {
			in, c := tr.rewrite(o.Ins[i])
			o.Ins[i] = in
			changed = changed || c
		}
	}

	if sel, ok := op.(*SelectOp); ok {
		if out, c := tr.rewriteSelect(sel); c {
			return out, true
		}
	}
	if j, ok := op.(*JoinOp); ok && len(j.LeftKeys) == 0 && j.On != nil {
		if c := tr.recognizeHashJoin(j); c {
			return j, true
		}
	}
	return op, changed
}

// conjuncts flattens a conjunction.
func conjuncts(e sqlpp.Expr) []sqlpp.Expr {
	if b, ok := e.(*sqlpp.Binary); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []sqlpp.Expr{e}
}

func conjoin(es []sqlpp.Expr) sqlpp.Expr {
	if len(es) == 0 {
		return nil
	}
	out := es[0]
	for _, e := range es[1:] {
		out = &sqlpp.Binary{Op: "AND", L: out, R: e}
	}
	return out
}

// usesOnly reports whether e's free variables (minus dataset names) are a
// subset of vars.
func (tr *Translator) usesOnly(e sqlpp.Expr, vars []string) bool {
	free := map[string]bool{}
	FreeVars(e, free)
	allowed := map[string]bool{}
	for _, v := range vars {
		allowed[v] = true
	}
	for v := range free {
		if allowed[v] {
			continue
		}
		if tr.Catalog != nil {
			if _, ok := tr.Catalog.Resolve(v); ok {
				continue
			}
		}
		return false
	}
	return true
}

// isConstant reports whether e references no variables at all (safe to
// evaluate at plan time).
func (tr *Translator) isConstant(e sqlpp.Expr) bool {
	free := map[string]bool{}
	FreeVars(e, free)
	return len(free) == 0
}

// rewriteSelect applies select-centered rules.
func (tr *Translator) rewriteSelect(sel *SelectOp) (Op, bool) {
	cs := conjuncts(sel.Cond)

	// Rule: quantifier-to-semijoin. SOME x IN <dataset> SATISFIES pred
	// becomes a (hash) semi join against the dataset.
	for i, c := range cs {
		q, ok := c.(*sqlpp.QuantifiedExpr)
		if !ok || !q.Some {
			continue
		}
		ds, ok := q.In.(*sqlpp.VarRef)
		if !ok || tr.Catalog == nil {
			continue
		}
		if _, isDS := tr.Catalog.Resolve(ds.Name); !isDS {
			continue
		}
		// The satisfies predicate may reference the quantified var and
		// outer scope only.
		if !tr.usesOnly(q.Satisfies, append(append([]string{}, sel.In.Schema()...), q.Var)) {
			continue
		}
		rest := append(append([]sqlpp.Expr{}, cs[:i]...), cs[i+1:]...)
		join := &JoinOp{
			L:    sel.In,
			R:    &ScanOp{Dataset: ds.Name, Var: q.Var},
			Kind: JoinSemi,
			On:   q.Satisfies,
		}
		var out Op = join
		if len(rest) > 0 {
			out = &SelectOp{In: out, Cond: conjoin(rest)}
		}
		return out, true
	}

	// Rule: push selections below assigns/unnests that don't define the
	// referenced variables, and into join sides.
	switch in := sel.In.(type) {
	case *AssignOp:
		var below, above []sqlpp.Expr
		for _, c := range cs {
			free := map[string]bool{}
			FreeVars(c, free)
			if !free[in.Var] {
				below = append(below, c)
			} else {
				above = append(above, c)
			}
		}
		if len(below) > 0 {
			in.In = &SelectOp{In: in.In, Cond: conjoin(below)}
			if len(above) == 0 {
				return in, true
			}
			sel.Cond = conjoin(above)
			return sel, true
		}
	case *JoinOp:
		if in.Kind == JoinInner {
			var toL, toR, keep []sqlpp.Expr
			for _, c := range cs {
				switch {
				case tr.usesOnly(c, in.L.Schema()):
					toL = append(toL, c)
				case tr.usesOnly(c, in.R.Schema()):
					toR = append(toR, c)
				default:
					keep = append(keep, c)
				}
			}
			if len(toL) > 0 || len(toR) > 0 {
				if len(toL) > 0 {
					in.L = &SelectOp{In: in.L, Cond: conjoin(toL)}
				}
				if len(toR) > 0 {
					in.R = &SelectOp{In: in.R, Cond: conjoin(toR)}
				}
				if len(keep) == 0 {
					return in, true
				}
				sel.Cond = conjoin(keep)
				return sel, true
			}
			// Fold remaining cross-side conjuncts into the join
			// condition (enables hash-join recognition).
			if in.On == nil && len(keep) > 0 {
				in.On = conjoin(keep)
				return in, true
			}
		}
	case *ScanOp:
		if out, ok := tr.introduceIndex(sel, in); ok {
			return out, true
		}
	}
	return sel, false
}

// recognizeHashJoin extracts equi-join keys from a join condition, adding
// assigns for the key expressions beneath each side.
func (tr *Translator) recognizeHashJoin(j *JoinOp) bool {
	cs := conjuncts(j.On)
	var lExprs, rExprs []sqlpp.Expr
	var residual []sqlpp.Expr
	for _, c := range cs {
		b, ok := c.(*sqlpp.Binary)
		if !ok || b.Op != "=" {
			residual = append(residual, c)
			continue
		}
		switch {
		case tr.usesOnly(b.L, j.L.Schema()) && tr.usesOnly(b.R, j.R.Schema()):
			lExprs = append(lExprs, b.L)
			rExprs = append(rExprs, b.R)
		case tr.usesOnly(b.L, j.R.Schema()) && tr.usesOnly(b.R, j.L.Schema()):
			lExprs = append(lExprs, b.R)
			rExprs = append(rExprs, b.L)
		default:
			residual = append(residual, c)
		}
	}
	if len(lExprs) == 0 {
		return false
	}
	// Residual conjuncts ride along: the hash join checks them on each
	// key-matching pair (required for correct outer/semi semantics; for
	// inner joins it is equivalent to a post-join filter).
	for i := range lExprs {
		lv := tr.freshVar("jkl")
		rv := tr.freshVar("jkr")
		j.L = &AssignOp{In: j.L, Var: lv, Expr: lExprs[i]}
		j.R = &AssignOp{In: j.R, Var: rv, Expr: rExprs[i]}
		j.LeftKeys = append(j.LeftKeys, lv)
		j.RightKeys = append(j.RightKeys, rv)
	}
	j.On = conjoin(residual) // post-join residual filter (inner only)
	return true
}

// introduceIndex replaces Scan+Select with an index search when a
// conjunct is sargable on an indexed field.
func (tr *Translator) introduceIndex(sel *SelectOp, scan *ScanOp) (Op, bool) {
	if tr.Catalog == nil {
		return nil, false
	}
	cs := conjuncts(sel.Cond)

	fieldOf := func(e sqlpp.Expr) (string, bool) {
		fa, ok := e.(*sqlpp.FieldAccess)
		if !ok {
			return "", false
		}
		vr, ok := fa.Base.(*sqlpp.VarRef)
		if !ok || vr.Name != scan.Var {
			return "", false
		}
		return fa.Field, true
	}

	// BTREE: collect range bounds per field.
	type rangeBound struct {
		lo, hi       sqlpp.Expr
		loInc, hiInc bool
		used         []int
	}
	bounds := map[string]*rangeBound{}
	for i, c := range cs {
		b, ok := c.(*sqlpp.Binary)
		if !ok {
			continue
		}
		var field string
		var valExpr sqlpp.Expr
		op := b.Op
		if f, ok := fieldOf(b.L); ok && tr.isConstant(b.R) {
			field, valExpr = f, b.R
		} else if f, ok := fieldOf(b.R); ok && tr.isConstant(b.L) {
			field, valExpr = f, b.L
			// Flip the comparison.
			switch op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			}
		} else {
			continue
		}
		idx, ok := tr.Catalog.ResolveIndex(scan.Dataset, field)
		if !ok || idx.Kind() != "BTREE" && idx.Kind() != "ZORDER" && idx.Kind() != "HILBERT" {
			// Only value-ordered indexes take range predicates (the
			// curve/grid variants are driven through spatial preds).
			if !ok || idx.Kind() != "BTREE" {
				continue
			}
		}
		if idx.Kind() != "BTREE" {
			continue
		}
		rb := bounds[field]
		if rb == nil {
			rb = &rangeBound{}
			bounds[field] = rb
		}
		switch op {
		case "=":
			rb.lo, rb.hi, rb.loInc, rb.hiInc = valExpr, valExpr, true, true
		case "<":
			rb.hi, rb.hiInc = valExpr, false
		case "<=":
			rb.hi, rb.hiInc = valExpr, true
		case ">":
			rb.lo, rb.loInc = valExpr, false
		case ">=":
			rb.lo, rb.loInc = valExpr, true
		default:
			continue
		}
		rb.used = append(rb.used, i)
	}
	for field, rb := range bounds {
		if rb.lo == nil && rb.hi == nil {
			continue
		}
		is := &IndexSearchOp{
			Dataset: scan.Dataset, Var: scan.Var, Field: field, Kind: "BTREE",
			Lo: rb.lo, Hi: rb.hi, LoInc: rb.loInc, HiInc: rb.hiInc,
		}
		// Keep the full predicate as a residual filter: the index
		// delivers a superset-safe candidate set; re-checking keeps
		// open-type edge cases (non-comparable values) correct.
		return &SelectOp{In: is, Cond: sel.Cond}, true
	}

	// RTREE: spatial_intersect(field, <const rect>).
	for _, c := range cs {
		call, ok := c.(*sqlpp.Call)
		if !ok || call.Fn != "spatial_intersect" || len(call.Args) != 2 {
			continue
		}
		var field string
		var rectExpr sqlpp.Expr
		if f, ok := fieldOf(call.Args[0]); ok && tr.isConstant(call.Args[1]) {
			field, rectExpr = f, call.Args[1]
		} else if f, ok := fieldOf(call.Args[1]); ok && tr.isConstant(call.Args[0]) {
			field, rectExpr = f, call.Args[0]
		} else {
			continue
		}
		idx, ok := tr.Catalog.ResolveIndex(scan.Dataset, field)
		if !ok {
			continue
		}
		switch idx.Kind() {
		case "RTREE", "ZORDER", "HILBERT", "GRID":
			is := &IndexSearchOp{
				Dataset: scan.Dataset, Var: scan.Var, Field: field,
				Kind: idx.Kind(), Rect: rectExpr,
			}
			return &SelectOp{In: is, Cond: sel.Cond}, true
		}
	}

	// KEYWORD: ftcontains(field, <const token>).
	for _, c := range cs {
		call, ok := c.(*sqlpp.Call)
		if !ok || call.Fn != "ftcontains" || len(call.Args) != 2 {
			continue
		}
		f, ok := fieldOf(call.Args[0])
		if !ok || !tr.isConstant(call.Args[1]) {
			continue
		}
		idx, ok := tr.Catalog.ResolveIndex(scan.Dataset, f)
		if !ok || idx.Kind() != "KEYWORD" {
			continue
		}
		is := &IndexSearchOp{
			Dataset: scan.Dataset, Var: scan.Var, Field: f,
			Kind: "KEYWORD", Token: call.Args[1],
		}
		return &SelectOp{In: is, Cond: sel.Cond}, true
	}
	return nil, false
}

// constValue evaluates a constant expression at plan time.
func (tr *Translator) constValue(e sqlpp.Expr) (adm.Value, error) {
	return tr.Ev.Eval(e, NewEnv(nil, nil, nil))
}
