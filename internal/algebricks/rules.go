package algebricks

import (
	"asterix/internal/adm"
	"asterix/internal/sqlpp"
)

// DefaultRules returns the standard rule pipeline in application order:
// normalization first (constant folding), then predicate motion, then the
// structural rules (join ordering, physical join/access-path selection),
// and finally the cleanup rules that shrink tuples.
func DefaultRules() []Rule {
	return []Rule{
		{Name: "constant-fold", Apply: ruleConstantFold},
		{Name: "quantifier-to-semijoin", Apply: ruleQuantifierToSemijoin},
		{Name: "push-select-down", Apply: rulePushSelectDown},
		{Name: "push-select-through-join", Apply: rulePushSelectThroughJoin},
		{Name: "order-joins-greedily", Apply: ruleOrderJoinsGreedily},
		{Name: "recognize-hash-join", Apply: ruleRecognizeHashJoin},
		{Name: "introduce-index-search", Apply: ruleIntroduceIndexSearch},
		{Name: "push-limit-into-scan", Apply: rulePushLimitIntoScan},
		{Name: "prune-columns", Apply: rulePruneColumns},
		{Name: "eliminate-redundant-project", Apply: ruleEliminateRedundantProject},
	}
}

// --- shared predicate helpers ---

// conjuncts flattens a conjunction (recursing through nested/parenthesized
// ANDs on both sides).
func conjuncts(e sqlpp.Expr) []sqlpp.Expr {
	if b, ok := e.(*sqlpp.Binary); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []sqlpp.Expr{e}
}

func conjoin(es []sqlpp.Expr) sqlpp.Expr {
	if len(es) == 0 {
		return nil
	}
	out := es[0]
	for _, e := range es[1:] {
		out = &sqlpp.Binary{Op: "AND", L: out, R: e}
	}
	return out
}

// usesOnly reports whether e's free variables (minus dataset names) are a
// subset of vars.
func (tr *Translator) usesOnly(e sqlpp.Expr, vars []string) bool {
	free := map[string]bool{}
	FreeVars(e, free)
	allowed := map[string]bool{}
	for _, v := range vars {
		allowed[v] = true
	}
	for v := range free {
		if allowed[v] {
			continue
		}
		if tr.Catalog != nil {
			if _, ok := tr.Catalog.Resolve(v); ok {
				continue
			}
		}
		return false
	}
	return true
}

// referencesAny reports whether e references at least one of vars. A key
// expression must actually depend on its join side: a constant passes
// usesOnly vacuously but makes a useless (single-partition) hash key.
func referencesAny(e sqlpp.Expr, vars []string) bool {
	free := map[string]bool{}
	FreeVars(e, free)
	for _, v := range vars {
		if free[v] {
			return true
		}
	}
	return false
}

// isConstant reports whether e references no variables at all (safe to
// evaluate at plan time).
func (tr *Translator) isConstant(e sqlpp.Expr) bool {
	free := map[string]bool{}
	FreeVars(e, free)
	return len(free) == 0
}

// containsSubquery reports whether e contains a nested SELECT, EXISTS, or
// quantifier — subtrees the constant folder must not evaluate at plan
// time (they may scan datasets).
func containsSubquery(e sqlpp.Expr) bool {
	found := false
	var walk func(sqlpp.Expr)
	walk = func(e sqlpp.Expr) {
		if found || e == nil {
			return
		}
		switch x := e.(type) {
		case *sqlpp.SelectExpr, *sqlpp.UnionExpr, *sqlpp.ExistsExpr, *sqlpp.QuantifiedExpr:
			found = true
		case *sqlpp.FieldAccess:
			walk(x.Base)
		case *sqlpp.IndexAccess:
			walk(x.Base)
			walk(x.Index)
		case *sqlpp.Call:
			for _, a := range x.Args {
				walk(a)
			}
		case *sqlpp.Unary:
			walk(x.X)
		case *sqlpp.Binary:
			walk(x.L)
			walk(x.R)
		case *sqlpp.IsExpr:
			walk(x.X)
		case *sqlpp.Between:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *sqlpp.InExpr:
			walk(x.X)
			walk(x.Coll)
		case *sqlpp.CaseExpr:
			walk(x.Operand)
			for _, wt := range x.Whens {
				walk(wt.When)
				walk(wt.Then)
			}
			walk(x.Else)
		case *sqlpp.ObjectConstructor:
			for _, f := range x.Fields {
				walk(f.Name)
				walk(f.Value)
			}
		case *sqlpp.ArrayConstructor:
			for _, el := range x.Elems {
				walk(el)
			}
		case *sqlpp.MultisetConstructor:
			for _, el := range x.Elems {
				walk(el)
			}
		}
	}
	walk(e)
	return found
}

// constValue evaluates a constant expression at plan time.
func (tr *Translator) constValue(e sqlpp.Expr) (adm.Value, error) {
	return tr.Ev.Eval(e, NewEnv(nil, nil, nil))
}

// --- rule: constant-fold ---

// foldConst replaces variable-free subexpressions with literals (bottom-up,
// largest constant subtree wins). Evaluation errors leave the expression
// unfolded so runtime semantics are preserved.
func (tr *Translator) foldConst(e sqlpp.Expr) (sqlpp.Expr, bool) {
	if e == nil {
		return nil, false
	}
	if _, ok := e.(*sqlpp.Literal); ok {
		return e, false
	}
	if !containsSubquery(e) && tr.isConstant(e) {
		if v, err := tr.constValue(e); err == nil {
			return &sqlpp.Literal{Value: v}, true
		}
		return e, false
	}
	changed := false
	fold := func(c sqlpp.Expr) sqlpp.Expr {
		nc, ch := tr.foldConst(c)
		changed = changed || ch
		return nc
	}
	switch x := e.(type) {
	case *sqlpp.FieldAccess:
		x.Base = fold(x.Base)
	case *sqlpp.IndexAccess:
		x.Base, x.Index = fold(x.Base), fold(x.Index)
	case *sqlpp.Call:
		for i := range x.Args {
			x.Args[i] = fold(x.Args[i])
		}
	case *sqlpp.Unary:
		x.X = fold(x.X)
	case *sqlpp.Binary:
		x.L, x.R = fold(x.L), fold(x.R)
	case *sqlpp.IsExpr:
		x.X = fold(x.X)
	case *sqlpp.Between:
		x.X, x.Lo, x.Hi = fold(x.X), fold(x.Lo), fold(x.Hi)
	case *sqlpp.InExpr:
		x.X, x.Coll = fold(x.X), fold(x.Coll)
	case *sqlpp.CaseExpr:
		if x.Operand != nil {
			x.Operand = fold(x.Operand)
		}
		for i := range x.Whens {
			x.Whens[i].When = fold(x.Whens[i].When)
			x.Whens[i].Then = fold(x.Whens[i].Then)
		}
		if x.Else != nil {
			x.Else = fold(x.Else)
		}
	case *sqlpp.ObjectConstructor:
		for i := range x.Fields {
			x.Fields[i].Value = fold(x.Fields[i].Value)
		}
	case *sqlpp.ArrayConstructor:
		for i := range x.Elems {
			x.Elems[i] = fold(x.Elems[i])
		}
	case *sqlpp.MultisetConstructor:
		for i := range x.Elems {
			x.Elems[i] = fold(x.Elems[i])
		}
	}
	return e, changed
}

func isTrueLiteral(e sqlpp.Expr) bool {
	l, ok := e.(*sqlpp.Literal)
	return ok && l.Value.Kind() == adm.KindBoolean && bool(l.Value.(adm.Boolean))
}

func ruleConstantFold(tr *Translator, plan Op) (Op, int) {
	return sweep(plan, func(op Op) (Op, bool) {
		changed := false
		fold := func(e sqlpp.Expr) sqlpp.Expr {
			ne, c := tr.foldConst(e)
			changed = changed || c
			return ne
		}
		switch o := op.(type) {
		case *SelectOp:
			o.Cond = fold(o.Cond)
			// Drop conjuncts folded to TRUE; drop the filter entirely when
			// nothing remains.
			cs := conjuncts(o.Cond)
			var kept []sqlpp.Expr
			for _, c := range cs {
				if !isTrueLiteral(c) {
					kept = append(kept, c)
				}
			}
			if len(kept) == 0 {
				return o.In, true
			}
			if len(kept) < len(cs) {
				o.Cond = conjoin(kept)
				changed = true
			}
		case *AssignOp:
			o.Expr = fold(o.Expr)
		case *UnnestOp:
			o.Expr = fold(o.Expr)
		case *JoinOp:
			if o.On != nil {
				o.On = fold(o.On)
			}
		case *ResultOp:
			o.Expr = fold(o.Expr)
		case *OrderOp:
			for i := range o.Items {
				o.Items[i].Expr = fold(o.Items[i].Expr)
			}
		case *GroupOp:
			for i := range o.Keys {
				o.Keys[i].Expr = fold(o.Keys[i].Expr)
			}
			for i := range o.Aggs {
				if o.Aggs[i].Arg != nil {
					o.Aggs[i].Arg = fold(o.Aggs[i].Arg)
				}
			}
		}
		return op, changed
	})
}

// --- rule: quantifier-to-semijoin ---

// SOME x IN <dataset> SATISFIES pred becomes a (hash) semi join against
// the dataset.
func ruleQuantifierToSemijoin(tr *Translator, plan Op) (Op, int) {
	return sweep(plan, func(op Op) (Op, bool) {
		sel, ok := op.(*SelectOp)
		if !ok {
			return op, false
		}
		cs := conjuncts(sel.Cond)
		for i, c := range cs {
			q, ok := c.(*sqlpp.QuantifiedExpr)
			if !ok || !q.Some {
				continue
			}
			ds, ok := q.In.(*sqlpp.VarRef)
			if !ok || tr.Catalog == nil {
				continue
			}
			if _, isDS := tr.Catalog.Resolve(ds.Name); !isDS {
				continue
			}
			// The satisfies predicate may reference the quantified var and
			// outer scope only.
			if !tr.usesOnly(q.Satisfies, append(append([]string{}, sel.In.Schema()...), q.Var)) {
				continue
			}
			rest := append(append([]sqlpp.Expr{}, cs[:i]...), cs[i+1:]...)
			join := &JoinOp{
				L:    sel.In,
				R:    &ScanOp{Dataset: ds.Name, Var: q.Var},
				Kind: JoinSemi,
				On:   q.Satisfies,
			}
			var out Op = join
			if len(rest) > 0 {
				out = &SelectOp{In: out, Cond: conjoin(rest)}
			}
			return out, true
		}
		return op, false
	})
}

// --- rule: push-select-down ---

// Push selections below assigns and unnests that do not define the
// referenced variables (both are 1:1 or expanding on rows they keep, so a
// filter on pre-existing columns commutes).
func rulePushSelectDown(tr *Translator, plan Op) (Op, int) {
	return sweep(plan, func(op Op) (Op, bool) {
		sel, ok := op.(*SelectOp)
		if !ok {
			return op, false
		}
		var defVar string
		var setChild func(Op)
		var child Op
		switch in := sel.In.(type) {
		case *AssignOp:
			defVar, child = in.Var, in.In
			setChild = func(c Op) { in.In = c }
		case *UnnestOp:
			defVar, child = in.Var, in.In
			setChild = func(c Op) { in.In = c }
		default:
			return op, false
		}
		var below, above []sqlpp.Expr
		for _, c := range conjuncts(sel.Cond) {
			free := map[string]bool{}
			FreeVars(c, free)
			if !free[defVar] {
				below = append(below, c)
			} else {
				above = append(above, c)
			}
		}
		if len(below) == 0 {
			return op, false
		}
		setChild(&SelectOp{In: child, Cond: conjoin(below)})
		if len(above) == 0 {
			return sel.In, true
		}
		sel.Cond = conjoin(above)
		return sel, true
	})
}

// --- rule: push-select-through-join ---

// Distribute a filter above a join: single-side conjuncts move below the
// join (into the preserved side only, for outer/semi joins), and for inner
// joins the remaining cross-side conjuncts fold into the join condition
// (enabling hash-join recognition).
func rulePushSelectThroughJoin(tr *Translator, plan Op) (Op, int) {
	return sweep(plan, func(op Op) (Op, bool) {
		sel, ok := op.(*SelectOp)
		if !ok {
			return op, false
		}
		j, ok := sel.In.(*JoinOp)
		if !ok {
			return op, false
		}
		cs := conjuncts(sel.Cond)
		switch j.Kind {
		case JoinInner:
			var toL, toR, keep []sqlpp.Expr
			for _, c := range cs {
				switch {
				case tr.usesOnly(c, j.L.Schema()):
					toL = append(toL, c)
				case tr.usesOnly(c, j.R.Schema()):
					toR = append(toR, c)
				default:
					keep = append(keep, c)
				}
			}
			// Folding into the join condition is only safe before key
			// extraction: afterwards On is the per-pair residual and stays
			// equivalent too, but there is nothing left to recognize.
			foldOK := len(j.LeftKeys) == 0
			if len(toL) == 0 && len(toR) == 0 && (len(keep) == 0 || !foldOK) {
				return op, false
			}
			if len(toL) > 0 {
				j.L = &SelectOp{In: j.L, Cond: conjoin(toL)}
			}
			if len(toR) > 0 {
				j.R = &SelectOp{In: j.R, Cond: conjoin(toR)}
			}
			if len(keep) > 0 && foldOK {
				if j.On != nil {
					keep = append(conjuncts(j.On), keep...)
				}
				j.On = conjoin(keep)
				return j, true
			}
			if len(keep) == 0 {
				return j, true
			}
			sel.Cond = conjoin(keep)
			return sel, true
		case JoinLeftOuter, JoinSemi:
			// Only the preserved (left) side can absorb filters: for a
			// left-outer join, pushing right-side filters would turn pad
			// rows into matches (or vice versa); for a semi join the output
			// schema is the left side anyway.
			var toL, keep []sqlpp.Expr
			for _, c := range cs {
				if tr.usesOnly(c, j.L.Schema()) && referencesAny(c, j.L.Schema()) {
					toL = append(toL, c)
				} else {
					keep = append(keep, c)
				}
			}
			if len(toL) == 0 {
				return op, false
			}
			j.L = &SelectOp{In: j.L, Cond: conjoin(toL)}
			if len(keep) == 0 {
				return j, true
			}
			sel.Cond = conjoin(keep)
			return sel, true
		}
		return op, false
	})
}

// --- rule: recognize-hash-join ---

// Extract equi-join keys from a join condition, adding assigns for the
// key expressions beneath each side. Handles straight and commuted
// equalities and AND-nested conjunctions (conjuncts flattens nesting);
// equalities against constants or spanning both sides stay in the
// residual predicate.
func ruleRecognizeHashJoin(tr *Translator, plan Op) (Op, int) {
	return sweep(plan, func(op Op) (Op, bool) {
		j, ok := op.(*JoinOp)
		if !ok || len(j.LeftKeys) > 0 || j.On == nil {
			return op, false
		}
		return j, tr.recognizeHashJoin(j)
	})
}

func (tr *Translator) recognizeHashJoin(j *JoinOp) bool {
	cs := conjuncts(j.On)
	lSchema, rSchema := j.L.Schema(), j.R.Schema()
	var lExprs, rExprs []sqlpp.Expr
	var residual []sqlpp.Expr
	for _, c := range cs {
		b, ok := c.(*sqlpp.Binary)
		if !ok || b.Op != "=" {
			residual = append(residual, c)
			continue
		}
		// Each key expression must use only — and at least one of — its
		// side's variables: a constant "key" would degenerate into a
		// single-partition cross join.
		switch {
		case tr.usesOnly(b.L, lSchema) && referencesAny(b.L, lSchema) &&
			tr.usesOnly(b.R, rSchema) && referencesAny(b.R, rSchema):
			lExprs = append(lExprs, b.L)
			rExprs = append(rExprs, b.R)
		case tr.usesOnly(b.L, rSchema) && referencesAny(b.L, rSchema) &&
			tr.usesOnly(b.R, lSchema) && referencesAny(b.R, lSchema):
			lExprs = append(lExprs, b.R)
			rExprs = append(rExprs, b.L)
		default:
			residual = append(residual, c)
		}
	}
	if len(lExprs) == 0 {
		return false
	}
	// Residual conjuncts ride along: the hash join checks them on each
	// key-matching pair (required for correct outer/semi semantics; for
	// inner joins it is equivalent to a post-join filter).
	for i := range lExprs {
		lv := tr.freshVar("jkl")
		rv := tr.freshVar("jkr")
		j.L = &AssignOp{In: j.L, Var: lv, Expr: lExprs[i]}
		j.R = &AssignOp{In: j.R, Var: rv, Expr: rExprs[i]}
		j.LeftKeys = append(j.LeftKeys, lv)
		j.RightKeys = append(j.RightKeys, rv)
	}
	j.On = conjoin(residual) // post-join residual filter
	return true
}

// --- rule: introduce-index-search ---

func ruleIntroduceIndexSearch(tr *Translator, plan Op) (Op, int) {
	return sweep(plan, func(op Op) (Op, bool) {
		sel, ok := op.(*SelectOp)
		if !ok {
			return op, false
		}
		scan, ok := sel.In.(*ScanOp)
		if !ok {
			return op, false
		}
		if out, c := tr.introduceIndex(sel, scan); c {
			return out, true
		}
		return op, false
	})
}

// introduceIndex replaces Scan+Select with an index search when a
// conjunct is sargable on an indexed field.
func (tr *Translator) introduceIndex(sel *SelectOp, scan *ScanOp) (Op, bool) {
	if tr.Catalog == nil {
		return nil, false
	}
	cs := conjuncts(sel.Cond)

	fieldOf := func(e sqlpp.Expr) (string, bool) {
		fa, ok := e.(*sqlpp.FieldAccess)
		if !ok {
			return "", false
		}
		vr, ok := fa.Base.(*sqlpp.VarRef)
		if !ok || vr.Name != scan.Var {
			return "", false
		}
		return fa.Field, true
	}

	// BTREE: collect range bounds per field, in first-conjunct order so
	// the chosen access path is deterministic.
	type rangeBound struct {
		lo, hi       sqlpp.Expr
		loInc, hiInc bool
	}
	bounds := map[string]*rangeBound{}
	var fieldOrder []string
	for _, c := range cs {
		b, ok := c.(*sqlpp.Binary)
		if !ok {
			continue
		}
		var field string
		var valExpr sqlpp.Expr
		op := b.Op
		if f, ok := fieldOf(b.L); ok && tr.isConstant(b.R) {
			field, valExpr = f, b.R
		} else if f, ok := fieldOf(b.R); ok && tr.isConstant(b.L) {
			field, valExpr = f, b.L
			// Flip the comparison.
			switch op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			}
		} else {
			continue
		}
		idx, ok := tr.Catalog.ResolveIndex(scan.Dataset, field)
		if !ok || idx.Kind() != "BTREE" {
			// Only value-ordered indexes take range predicates (the
			// curve/grid variants are driven through spatial preds).
			continue
		}
		rb := bounds[field]
		if rb == nil {
			rb = &rangeBound{}
			bounds[field] = rb
			fieldOrder = append(fieldOrder, field)
		}
		switch op {
		case "=":
			rb.lo, rb.hi, rb.loInc, rb.hiInc = valExpr, valExpr, true, true
		case "<":
			rb.hi, rb.hiInc = valExpr, false
		case "<=":
			rb.hi, rb.hiInc = valExpr, true
		case ">":
			rb.lo, rb.loInc = valExpr, false
		case ">=":
			rb.lo, rb.loInc = valExpr, true
		}
	}
	for _, field := range fieldOrder {
		rb := bounds[field]
		if rb.lo == nil && rb.hi == nil {
			continue
		}
		is := &IndexSearchOp{
			Dataset: scan.Dataset, Var: scan.Var, Field: field, Kind: "BTREE",
			Lo: rb.lo, Hi: rb.hi, LoInc: rb.loInc, HiInc: rb.hiInc,
		}
		// Keep the full predicate as a residual filter: the index
		// delivers a superset-safe candidate set; re-checking keeps
		// open-type edge cases (non-comparable values) correct.
		return &SelectOp{In: is, Cond: sel.Cond}, true
	}

	// RTREE: spatial_intersect(field, <const rect>).
	for _, c := range cs {
		call, ok := c.(*sqlpp.Call)
		if !ok || call.Fn != "spatial_intersect" || len(call.Args) != 2 {
			continue
		}
		var field string
		var rectExpr sqlpp.Expr
		if f, ok := fieldOf(call.Args[0]); ok && tr.isConstant(call.Args[1]) {
			field, rectExpr = f, call.Args[1]
		} else if f, ok := fieldOf(call.Args[1]); ok && tr.isConstant(call.Args[0]) {
			field, rectExpr = f, call.Args[0]
		} else {
			continue
		}
		idx, ok := tr.Catalog.ResolveIndex(scan.Dataset, field)
		if !ok {
			continue
		}
		switch idx.Kind() {
		case "RTREE", "ZORDER", "HILBERT", "GRID":
			is := &IndexSearchOp{
				Dataset: scan.Dataset, Var: scan.Var, Field: field,
				Kind: idx.Kind(), Rect: rectExpr,
			}
			return &SelectOp{In: is, Cond: sel.Cond}, true
		}
	}

	// KEYWORD: ftcontains(field, <const token>).
	for _, c := range cs {
		call, ok := c.(*sqlpp.Call)
		if !ok || call.Fn != "ftcontains" || len(call.Args) != 2 {
			continue
		}
		f, ok := fieldOf(call.Args[0])
		if !ok || !tr.isConstant(call.Args[1]) {
			continue
		}
		idx, ok := tr.Catalog.ResolveIndex(scan.Dataset, f)
		if !ok || idx.Kind() != "KEYWORD" {
			continue
		}
		is := &IndexSearchOp{
			Dataset: scan.Dataset, Var: scan.Var, Field: f,
			Kind: "KEYWORD", Token: call.Args[1],
		}
		return &SelectOp{In: is, Cond: sel.Cond}, true
	}
	return nil, false
}

// --- rule: push-limit-into-scan ---

// Cap leaf scans under a LIMIT: walking through row-preserving 1:1
// operators (assign/result/project), each scan partition needs to produce
// at most limit+offset tuples. The LimitOp above still enforces the exact
// global bound.
func rulePushLimitIntoScan(tr *Translator, plan Op) (Op, int) {
	return sweep(plan, func(op Op) (Op, bool) {
		l, ok := op.(*LimitOp)
		if !ok || l.Limit < 0 {
			return op, false
		}
		target := l.Limit + l.Offset
		if target <= 0 {
			return op, false
		}
		cur := l.In
		for {
			switch x := cur.(type) {
			case *AssignOp:
				cur = x.In
			case *ResultOp:
				cur = x.In
			case *ProjectOp:
				cur = x.In
			case *ScanOp:
				if x.MaxTuples == 0 || x.MaxTuples > target {
					x.MaxTuples = target
					return op, true
				}
				return op, false
			case *IndexSearchOp:
				if x.MaxTuples == 0 || x.MaxTuples > target {
					x.MaxTuples = target
					return op, true
				}
				return op, false
			default:
				return op, false
			}
		}
	})
}

// --- rule: prune-columns ---

// Propagate required columns top-down: drop assigns nobody reads and
// narrow join inputs with projects so exchanges move minimal tuples.
func rulePruneColumns(tr *Translator, plan Op) (Op, int) {
	hits := 0
	need := map[string]bool{}
	if indexOf(plan.Schema(), ResultVar) >= 0 {
		// Downstream (result sink) only reads the result column.
		need[ResultVar] = true
	} else {
		for _, v := range plan.Schema() {
			need[v] = true
		}
	}
	out := pruneOp(plan, need, &hits)
	return out, hits
}

func addFreeIn(need map[string]bool, e sqlpp.Expr, schema []string) {
	free := map[string]bool{}
	FreeVars(e, free)
	for _, v := range schema {
		if free[v] {
			need[v] = true
		}
	}
}

func cloneSet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		if v {
			out[k] = true
		}
	}
	return out
}

func pruneOp(op Op, need map[string]bool, hits *int) Op {
	switch o := op.(type) {
	case *SelectOp:
		n := cloneSet(need)
		addFreeIn(n, o.Cond, o.In.Schema())
		o.In = pruneOp(o.In, n, hits)
		return o
	case *AssignOp:
		if !need[o.Var] {
			// Dead assign: nobody downstream reads the column.
			*hits++
			return pruneOp(o.In, need, hits)
		}
		n := cloneSet(need)
		delete(n, o.Var)
		addFreeIn(n, o.Expr, o.In.Schema())
		o.In = pruneOp(o.In, n, hits)
		return o
	case *UnnestOp:
		// The unnest shapes cardinality even when its variable is dead;
		// only the requirement set shrinks.
		n := cloneSet(need)
		delete(n, o.Var)
		addFreeIn(n, o.Expr, o.In.Schema())
		o.In = pruneOp(o.In, n, hits)
		return o
	case *ProjectOp:
		var cols []string
		for _, c := range o.Cols {
			if need[c] {
				cols = append(cols, c)
			}
		}
		if len(cols) < len(o.Cols) {
			o.Cols = cols
			*hits++
		}
		n := map[string]bool{}
		for _, c := range o.Cols {
			n[c] = true
		}
		o.In = pruneOp(o.In, n, hits)
		return o
	case *JoinOp:
		needL := map[string]bool{}
		needR := map[string]bool{}
		lSchema, rSchema := o.L.Schema(), o.R.Schema()
		for _, v := range lSchema {
			if need[v] {
				needL[v] = true
			}
		}
		for _, v := range rSchema {
			if need[v] {
				needR[v] = true
			}
		}
		if o.On != nil {
			addFreeIn(needL, o.On, lSchema)
			addFreeIn(needR, o.On, rSchema)
		}
		for _, k := range o.LeftKeys {
			needL[k] = true
		}
		for _, k := range o.RightKeys {
			needR[k] = true
		}
		o.L = maybeProject(pruneOp(o.L, needL, hits), needL, hits)
		o.R = maybeProject(pruneOp(o.R, needR, hits), needR, hits)
		return o
	case *GroupOp:
		n := map[string]bool{}
		inSchema := o.In.Schema()
		for _, k := range o.Keys {
			addFreeIn(n, k.Expr, inSchema)
		}
		for _, a := range o.Aggs {
			if a.Arg != nil {
				addFreeIn(n, a.Arg, inSchema)
			}
		}
		if o.GroupAs != "" {
			// GROUP AS materializes every row variable.
			for _, v := range o.RowVars {
				n[v] = true
			}
		}
		o.In = pruneOp(o.In, n, hits)
		return o
	case *ResultOp:
		n := cloneSet(need)
		delete(n, ResultVar)
		addFreeIn(n, o.Expr, o.In.Schema())
		o.In = pruneOp(o.In, n, hits)
		return o
	case *DistinctOp:
		o.In = pruneOp(o.In, map[string]bool{ResultVar: true}, hits)
		return o
	case *OrderOp:
		n := cloneSet(need)
		for _, it := range o.Items {
			addFreeIn(n, it.Expr, o.In.Schema())
		}
		o.In = pruneOp(o.In, n, hits)
		return o
	case *LimitOp:
		o.In = pruneOp(o.In, need, hits)
		return o
	case *UnionAllOp:
		for i := range o.Ins {
			o.Ins[i] = pruneOp(o.Ins[i], map[string]bool{ResultVar: true}, hits)
		}
		return o
	default:
		return op
	}
}

// maybeProject narrows child to the needed columns when it produces more,
// keeping schema order. Children that are already projects were narrowed
// in place by pruneOp.
func maybeProject(child Op, need map[string]bool, hits *int) Op {
	if _, ok := child.(*ProjectOp); ok {
		return child
	}
	schema := child.Schema()
	var cols []string
	for _, v := range schema {
		if need[v] {
			cols = append(cols, v)
		}
	}
	if len(cols) == len(schema) {
		return child
	}
	*hits++
	return &ProjectOp{In: child, Cols: cols}
}

// --- rule: eliminate-redundant-project ---

func ruleEliminateRedundantProject(tr *Translator, plan Op) (Op, int) {
	return sweep(plan, func(op Op) (Op, bool) {
		p, ok := op.(*ProjectOp)
		if !ok {
			return op, false
		}
		// Collapse stacked projects (the outer column set is a subset of
		// the inner by construction).
		if inner, ok := p.In.(*ProjectOp); ok {
			p.In = inner.In
			return p, true
		}
		// An identity project is noise.
		if sameStrings(p.Cols, p.In.Schema()) {
			return p.In, true
		}
		return op, false
	})
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
