package algebricks

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"asterix/internal/adm"
	"asterix/internal/hyracks"
	"asterix/internal/sqlpp"
)

// TestPropRandomQueriesJobMatchesInterpreter generates random (but
// well-formed) SQL++ queries over the test catalog and checks that the
// partitioned-parallel execution path and the serial interpreter agree —
// the strongest invariant the compiler stack has.
func TestPropRandomQueriesJobMatchesInterpreter(t *testing.T) {
	cat := testCatalog()
	r := rand.New(rand.NewSource(2024))

	fields := []string{"id", "age", "name"}
	cmps := []string{"<", "<=", ">", ">=", "=", "!="}
	genPredicate := func(v string) string {
		f := fields[r.Intn(len(fields))]
		if f == "name" {
			return fmt.Sprintf(`%s.name %s "user%02d"`, v, cmps[r.Intn(len(cmps))], r.Intn(25))
		}
		return fmt.Sprintf("%s.%s %s %d", v, f, cmps[r.Intn(len(cmps))], r.Intn(30))
	}

	genQuery := func() (string, bool) {
		ordered := false
		q := ""
		switch r.Intn(5) {
		case 0: // filter + project
			q = fmt.Sprintf(`SELECT VALUE u.id FROM Users u WHERE %s`, genPredicate("u"))
		case 1: // conjunctive filter with order
			q = fmt.Sprintf(`SELECT u.id AS id, u.age AS age FROM Users u WHERE %s AND %s ORDER BY u.id`,
				genPredicate("u"), genPredicate("u"))
			ordered = true
		case 2: // join
			q = fmt.Sprintf(`SELECT u.id AS id, m.mid AS mid FROM Users u, Messages m
				WHERE m.authorId = u.id AND %s`, genPredicate("u"))
		case 3: // group by with aggregates
			q = fmt.Sprintf(`SELECT u.age AS age, COUNT(*) AS n, SUM(u.id) AS s
				FROM Users u WHERE %s GROUP BY u.age AS age`, genPredicate("u"))
		case 4: // order + limit + offset
			q = fmt.Sprintf(`SELECT VALUE u.name FROM Users u WHERE %s ORDER BY u.name DESC LIMIT %d OFFSET %d`,
				genPredicate("u"), 1+r.Intn(10), r.Intn(5))
			ordered = true
		}
		return q + ";", ordered
	}

	cluster, err := hyracks.NewCluster(2, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 60; trial++ {
		src, ordered := genQuery()
		qs, err := sqlpp.ParseQuery(src)
		if err != nil {
			t.Fatalf("generated query does not parse: %s\n%v", src, err)
		}
		ev := newEval(cat)
		// Interpreter path.
		iv, err := ev.Eval(qs.Body, NewEnv(nil, nil, nil))
		if err != nil {
			t.Fatalf("interpret %s: %v", src, err)
		}
		interpRows := []adm.Value(iv.(adm.Array))
		// Parallel job path.
		tr := &Translator{Ev: ev, Catalog: cat}
		plan, err := tr.Translate(qs.Body.(*sqlpp.SelectExpr))
		if err != nil {
			t.Fatalf("translate %s: %v", src, err)
		}
		plan = tr.Optimize(plan)
		g := &JobGen{Cluster: cluster, Catalog: cat, Ev: ev, Parallelism: 2}
		coll := &hyracks.Collector{}
		job, err := g.Build(plan, coll)
		if err != nil {
			t.Fatalf("jobgen %s: %v", src, err)
		}
		if err := cluster.Run(context.Background(), job); err != nil {
			t.Fatalf("run %s: %v", src, err)
		}
		var jobRows []string
		for _, tp := range coll.Tuples() {
			jobRows = append(jobRows, adm.ToJSON(tp[0]))
		}
		var wantRows []string
		for _, v := range interpRows {
			wantRows = append(wantRows, adm.ToJSON(v))
		}
		if !ordered {
			sort.Strings(jobRows)
			sort.Strings(wantRows)
		}
		if len(jobRows) != len(wantRows) {
			t.Fatalf("query %s:\njob %d rows, interp %d rows", src, len(jobRows), len(wantRows))
		}
		for i := range jobRows {
			if jobRows[i] != wantRows[i] {
				t.Fatalf("query %s:\nrow %d: job %s != interp %s", src, i, jobRows[i], wantRows[i])
			}
		}
	}
}
