// Package check is the runtime invariant-checking framework: deep
// structural validators (B+tree ordering, LSM component sequencing,
// buffer-cache accounting, R-tree MBR containment) live next to the data
// structures they verify as Validate() methods; this package decides when
// they run and how violations surface.
//
// Three entry points:
//
//   - tests call MustValidate unconditionally, so every tier-1 run walks
//     the structures regardless of build flavor;
//   - production code calls Run (error) or Assert (panic) at natural
//     barriers (after a flush, after a bulk load); these are no-ops
//     unless checking is enabled;
//   - checking is enabled by building with -tags invariants, or at run
//     time by setting ASTERIX_INVARIANTS to any non-empty value.
//
// Validators are O(structure size) deep walks — far too expensive for the
// hot path, which is why the production hooks are opt-in.
package check

import (
	"fmt"
	"os"
)

// Validator is a structure that can verify its own deep invariants.
// Validate must be safe to call between operations (it may take the
// structure's own locks) and must not modify the structure.
type Validator interface {
	Validate() error
}

// Enabled reports whether production invariant hooks are active: true
// when built with -tags invariants or when ASTERIX_INVARIANTS is set.
func Enabled() bool {
	return tagEnabled || os.Getenv("ASTERIX_INVARIANTS") != ""
}

// Run validates v when checking is enabled; disabled or nil v is a no-op.
func Run(v Validator) error {
	if !Enabled() || v == nil {
		return nil
	}
	if err := v.Validate(); err != nil {
		return fmt.Errorf("invariant violation: %w", err)
	}
	return nil
}

// Assert is Run for call sites with no error path: it panics on
// violation. Use at debug barriers where continuing would corrupt data.
func Assert(v Validator) {
	if err := Run(v); err != nil {
		panic(err)
	}
}

// failer is the subset of testing.TB MustValidate needs; an interface so
// this package does not import testing into production binaries.
type failer interface {
	Helper()
	Fatalf(format string, args ...any)
}

// MustValidate runs v's validator unconditionally — tests always check,
// independent of build tags — and fails the test on violation.
func MustValidate(tb failer, v Validator) {
	tb.Helper()
	if v == nil {
		tb.Fatalf("check: MustValidate called with nil validator")
		return
	}
	if err := v.Validate(); err != nil {
		tb.Fatalf("invariant violation: %v", err)
	}
}
