//go:build !invariants

package check

// tagEnabled is false in default builds: production Run/Assert hooks are
// no-ops unless ASTERIX_INVARIANTS is set in the environment.
const tagEnabled = false
