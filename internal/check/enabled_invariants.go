//go:build invariants

package check

// tagEnabled is true in -tags invariants builds: production Run/Assert
// hooks validate on every call.
const tagEnabled = true
