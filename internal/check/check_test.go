package check

import (
	"errors"
	"testing"
)

type fake struct{ err error }

func (f fake) Validate() error { return f.err }

func TestRunDisabledByDefault(t *testing.T) {
	if tagEnabled {
		t.Skip("built with -tags invariants")
	}
	t.Setenv("ASTERIX_INVARIANTS", "")
	if Enabled() {
		t.Fatal("Enabled() = true in a default build with no env")
	}
	if err := Run(fake{err: errors.New("boom")}); err != nil {
		t.Fatalf("Run must be a no-op when disabled, got %v", err)
	}
}

func TestRunEnabledByEnv(t *testing.T) {
	t.Setenv("ASTERIX_INVARIANTS", "1")
	if !Enabled() {
		t.Fatal("Enabled() = false with ASTERIX_INVARIANTS set")
	}
	if err := Run(fake{err: errors.New("boom")}); err == nil {
		t.Fatal("Run must surface the violation when enabled")
	}
	if err := Run(fake{}); err != nil {
		t.Fatalf("Run on a valid structure: %v", err)
	}
	if err := Run(nil); err != nil {
		t.Fatalf("Run(nil) must be a no-op, got %v", err)
	}
}

func TestAssertPanics(t *testing.T) {
	t.Setenv("ASTERIX_INVARIANTS", "1")
	defer func() {
		if recover() == nil {
			t.Fatal("Assert must panic on violation")
		}
	}()
	Assert(fake{err: errors.New("boom")})
}

type fataler struct {
	failed bool
	msg    string
}

func (f *fataler) Helper() {}
func (f *fataler) Fatalf(format string, args ...any) {
	f.failed = true
	f.msg = format
}

func TestMustValidateRunsWhenDisabled(t *testing.T) {
	t.Setenv("ASTERIX_INVARIANTS", "")
	var tb fataler
	MustValidate(&tb, fake{err: errors.New("boom")})
	if !tb.failed {
		t.Fatal("MustValidate must run validators even when checking is disabled")
	}
}
