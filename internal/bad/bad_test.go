package bad

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"asterix/internal/adm"
)

// fakeExec returns canned rows, optionally filtered by a parameter bound
// in the WITH prefix.
type fakeExec struct {
	mu   sync.Mutex
	rows []adm.Value
	// lastQuery records the query text received.
	lastQuery string
}

func (f *fakeExec) QueryRows(ctx context.Context, src string) ([]adm.Value, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lastQuery = src
	out := append([]adm.Value(nil), f.rows...)
	return out, nil
}

func (f *fakeExec) setRows(rows ...adm.Value) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rows = rows
}

func TestChannelDeliversOnlyNewResults(t *testing.T) {
	exec := &fakeExec{}
	exec.setRows(adm.Int64(1), adm.Int64(2))
	ch := NewChannel(exec, "emergencies", "SELECT VALUE x FROM X x", time.Hour)
	sub := ch.Subscribe(nil)

	if err := ch.ExecuteOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := <-sub.C
	if len(got) != 2 {
		t.Fatalf("first delivery: %v", got)
	}
	// Same results again: nothing new, nothing delivered.
	if err := ch.ExecuteOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-sub.C:
		t.Fatalf("unexpected delivery: %v", v)
	default:
	}
	// A new row appears: only it is delivered.
	exec.setRows(adm.Int64(1), adm.Int64(2), adm.Int64(3))
	if err := ch.ExecuteOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	got = <-sub.C
	if len(got) != 1 || got[0].String() != "3" {
		t.Fatalf("incremental delivery: %v", got)
	}
}

func TestChannelParameterBinding(t *testing.T) {
	exec := &fakeExec{}
	ch := NewChannel(exec, "c", "SELECT VALUE x FROM X x WHERE x > threshold", time.Hour)
	sub := ch.Subscribe(map[string]adm.Value{"threshold": adm.Int64(10)})
	_ = sub
	if err := ch.ExecuteOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(exec.lastQuery, "WITH threshold AS 10 ") {
		t.Fatalf("parameter binding missing: %q", exec.lastQuery)
	}
	// WITH-prefixed queries merge bindings.
	ch2 := NewChannel(exec, "c2", "WITH a AS 1 SELECT VALUE a", time.Hour)
	ch2.Subscribe(map[string]adm.Value{"b": adm.Int64(2)})
	ch2.ExecuteOnce(context.Background())
	if !strings.HasPrefix(exec.lastQuery, "WITH b AS 2, ") {
		t.Fatalf("merged WITH wrong: %q", exec.lastQuery)
	}
}

func TestSubscriptionsIndependent(t *testing.T) {
	exec := &fakeExec{}
	exec.setRows(adm.Int64(1))
	ch := NewChannel(exec, "c", "Q", time.Hour)
	s1 := ch.Subscribe(nil)
	ch.ExecuteOnce(context.Background())
	<-s1.C
	// A later subscriber still gets the full current result set.
	s2 := ch.Subscribe(nil)
	ch.ExecuteOnce(context.Background())
	got := <-s2.C
	if len(got) != 1 {
		t.Fatalf("late subscriber delivery: %v", got)
	}
	select {
	case v := <-s1.C:
		t.Fatalf("s1 got duplicate: %v", v)
	default:
	}
}

func TestUnsubscribeCloses(t *testing.T) {
	exec := &fakeExec{}
	ch := NewChannel(exec, "c", "Q", time.Hour)
	s := ch.Subscribe(nil)
	ch.Unsubscribe(s)
	if _, ok := <-s.C; ok {
		t.Fatal("channel should be closed")
	}
	// Double unsubscribe is safe.
	ch.Unsubscribe(s)
}

func TestRunPeriodic(t *testing.T) {
	exec := &fakeExec{}
	exec.setRows(adm.Int64(1))
	ch := NewChannel(exec, "c", "Q", 10*time.Millisecond)
	sub := ch.Subscribe(nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ch.Run(ctx) }()
	select {
	case got := <-sub.C:
		if len(got) != 1 {
			t.Fatalf("periodic delivery: %v", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no periodic delivery")
	}
	cancel()
	<-done
}
