// Package bad implements the Big Active Data extension the paper
// describes ([17], "data pub/sub"): repetitive channels — parameterized
// standing queries re-executed on a period — whose *new* results are
// delivered to subscribed brokers. It runs as a layer over the engine,
// exactly as BAD extends AsterixDB with extra DDL/DML.
package bad

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"asterix/internal/adm"
)

// Executor abstracts the query engine a channel runs against.
type Executor interface {
	QueryRows(ctx context.Context, src string) ([]adm.Value, error)
}

// Channel is a repetitive channel: a parameterized query whose fresh
// results are pushed to subscribers each period.
type Channel struct {
	Name   string
	Query  string // may reference parameters as variables, e.g. $threshold
	Period time.Duration

	exec Executor

	mu     sync.Mutex
	subs   map[int64]*Subscription
	nextID int64
}

// Subscription is one broker's parameterized subscription.
type Subscription struct {
	ID     int64
	Params map[string]adm.Value
	// C delivers each execution's new results (results not delivered to
	// this subscription before).
	C <-chan []adm.Value

	ch   chan []adm.Value
	seen map[string]bool
}

// NewChannel creates a channel over the executor.
func NewChannel(exec Executor, name, query string, period time.Duration) *Channel {
	return &Channel{
		Name:   name,
		Query:  query,
		Period: period,
		exec:   exec,
		subs:   map[int64]*Subscription{},
	}
}

// Subscribe registers a subscription with parameter bindings.
func (c *Channel) Subscribe(params map[string]adm.Value) *Subscription {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	ch := make(chan []adm.Value, 16)
	s := &Subscription{
		ID:     c.nextID,
		Params: params,
		C:      ch,
		ch:     ch,
		seen:   map[string]bool{},
	}
	c.subs[s.ID] = s
	return s
}

// Unsubscribe removes a subscription and closes its delivery channel.
func (c *Channel) Unsubscribe(s *Subscription) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.subs[s.ID]; ok {
		delete(c.subs, s.ID)
		close(s.ch)
	}
}

// bindParams prepends WITH bindings for the subscription parameters.
func bindParams(query string, params map[string]adm.Value) string {
	if len(params) == 0 {
		return query
	}
	var binds []string
	for name, v := range params {
		binds = append(binds, fmt.Sprintf("%s AS %s", name, v.String()))
	}
	// Deterministic order for testability.
	sortStrings(binds)
	q := strings.TrimSpace(query)
	if strings.HasPrefix(strings.ToUpper(q), "WITH ") {
		return "WITH " + strings.Join(binds, ", ") + ", " + q[5:]
	}
	return "WITH " + strings.Join(binds, ", ") + " " + q
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ExecuteOnce runs the channel once for every subscription, delivering
// only results each subscription has not seen before.
func (c *Channel) ExecuteOnce(ctx context.Context) error {
	c.mu.Lock()
	subs := make([]*Subscription, 0, len(c.subs))
	for _, s := range c.subs {
		subs = append(subs, s)
	}
	c.mu.Unlock()
	for _, s := range subs {
		rows, err := c.exec.QueryRows(ctx, bindParams(c.Query, s.Params))
		if err != nil {
			return fmt.Errorf("bad: channel %s: %w", c.Name, err)
		}
		var fresh []adm.Value
		for _, r := range rows {
			key := adm.ToJSON(r)
			if !s.seen[key] {
				s.seen[key] = true
				fresh = append(fresh, r)
			}
		}
		if len(fresh) > 0 {
			select {
			case s.ch <- fresh:
			default:
				// Slow broker: drop this delivery rather than stall the
				// channel (brokers resynchronize on the next period).
			}
		}
	}
	return nil
}

// Run executes the channel on its period until ctx is done.
func (c *Channel) Run(ctx context.Context) error {
	ticker := time.NewTicker(c.Period)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			if err := c.ExecuteOnce(ctx); err != nil {
				return err
			}
		}
	}
}
