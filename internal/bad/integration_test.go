package bad_test

import (
	"context"
	"testing"
	"time"

	"asterix/internal/adm"
	"asterix/internal/bad"
	"asterix/internal/core"
)

// engineExec adapts the real engine to the channel's Executor.
type engineExec struct{ e *core.Engine }

func (x engineExec) QueryRows(ctx context.Context, src string) ([]adm.Value, error) {
	r, err := x.e.Query(ctx, src)
	if err != nil {
		return nil, err
	}
	return r.Rows, nil
}

// TestChannelOverRealEngine runs a BAD channel against a live engine: new
// matching records appear in the next delivery, parameterized per broker.
func TestChannelOverRealEngine(t *testing.T) {
	fixed, _ := time.Parse(time.RFC3339, "2019-04-01T00:00:00Z")
	e, err := core.Open(core.Config{DataDir: t.TempDir(), Now: func() time.Time { return fixed }})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	if _, err := e.Execute(ctx, `
		CREATE TYPE RT AS {id: int, severity: int};
		CREATE DATASET Reports(RT) PRIMARY KEY id;`); err != nil {
		t.Fatal(err)
	}

	ch := bad.NewChannel(engineExec{e}, "alerts",
		`SELECT VALUE r.id FROM Reports r WHERE r.severity >= minSev ORDER BY r.id`,
		time.Hour)
	strict := ch.Subscribe(map[string]adm.Value{"minSev": adm.Int64(4)})
	loose := ch.Subscribe(map[string]adm.Value{"minSev": adm.Int64(1)})

	exec := func(stmt string) {
		t.Helper()
		if _, err := e.Execute(ctx, stmt); err != nil {
			t.Fatal(err)
		}
	}
	exec(`INSERT INTO Reports ([{"id": 1, "severity": 2}, {"id": 2, "severity": 5}]);`)
	if err := ch.ExecuteOnce(ctx); err != nil {
		t.Fatal(err)
	}
	gotStrict := <-strict.C
	if len(gotStrict) != 1 || gotStrict[0].String() != "2" {
		t.Fatalf("strict delivery: %v", gotStrict)
	}
	gotLoose := <-loose.C
	if len(gotLoose) != 2 {
		t.Fatalf("loose delivery: %v", gotLoose)
	}

	// A new high-severity report: both get exactly the new id.
	exec(`INSERT INTO Reports ({"id": 3, "severity": 9});`)
	if err := ch.ExecuteOnce(ctx); err != nil {
		t.Fatal(err)
	}
	for name, sub := range map[string]*bad.Subscription{"strict": strict, "loose": loose} {
		got := <-sub.C
		if len(got) != 1 || got[0].String() != "3" {
			t.Fatalf("%s incremental delivery: %v", name, got)
		}
	}
}
