// Package btree implements a paged B+tree over the storage buffer cache.
// Keys and values are opaque byte strings; keys compare with bytes.Compare
// (ADM values use adm.EncodeKey to obtain order-preserving key bytes).
//
// The tree supports point search, upserting insert, delete (lazy: leaves
// may underflow without rebalancing, as many production systems allow),
// ordered range scans via the leaf chain, and bottom-up bulk loading from
// sorted input — the operation whose absence for linear hashing is the
// punchline of the paper's Section V-C.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"asterix/internal/check"
	"asterix/internal/storage"
)

const (
	nodeInterior = 0
	nodeLeaf     = 1

	metaPage = int32(0)
	noPage   = int32(-1)
)

// BTree is a B+tree stored in one page file.
type BTree struct {
	bc   *storage.BufferCache
	file storage.FileID

	root   int32
	height int32
	count  int64
}

// Open opens (or initializes) a B+tree in the file. A fresh file gets a
// meta page and an empty root leaf.
func Open(bc *storage.BufferCache, file storage.FileID) (*BTree, error) {
	t := &BTree{bc: bc, file: file}
	n, err := bc.FileManager().NumPages(file)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		mp, err := bc.NewPage(file)
		if err != nil {
			return nil, err
		}
		rp, err := bc.NewPage(file)
		if err != nil {
			bc.Unpin(mp, false)
			return nil, err
		}
		root := newNode(nodeLeaf)
		root.next = noPage
		root.encode(rp.Data)
		t.root = rp.ID.Num
		t.height = 1
		t.writeMeta(mp.Data)
		bc.Unpin(rp, true)
		bc.Unpin(mp, true)
		return t, nil
	}
	mp, err := bc.Pin(storage.PageID{File: file, Num: metaPage})
	if err != nil {
		return nil, err
	}
	t.root = int32(binary.BigEndian.Uint32(mp.Data[0:]))
	t.height = int32(binary.BigEndian.Uint32(mp.Data[4:]))
	t.count = int64(binary.BigEndian.Uint64(mp.Data[8:]))
	bc.Unpin(mp, false)
	return t, nil
}

func (t *BTree) writeMeta(buf []byte) {
	binary.BigEndian.PutUint32(buf[0:], uint32(t.root))
	binary.BigEndian.PutUint32(buf[4:], uint32(t.height))
	binary.BigEndian.PutUint64(buf[8:], uint64(t.count))
}

func (t *BTree) syncMeta() error {
	mp, err := t.bc.Pin(storage.PageID{File: t.file, Num: metaPage})
	if err != nil {
		return err
	}
	t.writeMeta(mp.Data)
	t.bc.Unpin(mp, true)
	return nil
}

// Count returns the number of live entries.
func (t *BTree) Count() int64 { return t.count }

// Height returns the tree height in levels (1 = single leaf).
func (t *BTree) Height() int32 { return t.height }

// MaxEntrySize returns the largest key+value size the tree accepts.
func (t *BTree) MaxEntrySize() int {
	return (t.bc.FileManager().PageSize() - 16) / 4
}

// node is the decoded form of a page.
type node struct {
	typ      byte
	next     int32    // leaf: next-leaf page (noPage if none)
	keys     [][]byte // leaf: entry keys; interior: separators
	vals     [][]byte // leaf only
	children []int32  // interior only, len = len(keys)+1
}

func newNode(typ byte) *node { return &node{typ: typ, next: noPage} }

// encodedSize returns the page bytes the node needs.
func (n *node) encodedSize() int {
	sz := 1 + 2 + 4 // type, count, next
	for i, k := range n.keys {
		sz += uvarintLen(uint64(len(k))) + len(k)
		if n.typ == nodeLeaf {
			sz += uvarintLen(uint64(len(n.vals[i]))) + len(n.vals[i])
		}
	}
	if n.typ == nodeInterior {
		sz += 4 * len(n.children)
	}
	return sz
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func (n *node) encode(buf []byte) {
	buf[0] = n.typ
	binary.BigEndian.PutUint16(buf[1:], uint16(len(n.keys)))
	binary.BigEndian.PutUint32(buf[3:], uint32(n.next))
	pos := 7
	if n.typ == nodeInterior {
		for _, c := range n.children {
			binary.BigEndian.PutUint32(buf[pos:], uint32(c))
			pos += 4
		}
	}
	for i, k := range n.keys {
		pos += binary.PutUvarint(buf[pos:], uint64(len(k)))
		pos += copy(buf[pos:], k)
		if n.typ == nodeLeaf {
			pos += binary.PutUvarint(buf[pos:], uint64(len(n.vals[i])))
			pos += copy(buf[pos:], n.vals[i])
		}
	}
}

func decodeNode(buf []byte) (*node, error) {
	n := &node{typ: buf[0]}
	cnt := int(binary.BigEndian.Uint16(buf[1:]))
	n.next = int32(binary.BigEndian.Uint32(buf[3:]))
	pos := 7
	if n.typ == nodeInterior {
		n.children = make([]int32, cnt+1)
		for i := range n.children {
			n.children[i] = int32(binary.BigEndian.Uint32(buf[pos:]))
			pos += 4
		}
	}
	n.keys = make([][]byte, cnt)
	if n.typ == nodeLeaf {
		n.vals = make([][]byte, cnt)
	}
	for i := 0; i < cnt; i++ {
		kl, m := binary.Uvarint(buf[pos:])
		if m <= 0 {
			return nil, fmt.Errorf("btree: corrupt node")
		}
		pos += m
		n.keys[i] = append([]byte(nil), buf[pos:pos+int(kl)]...)
		pos += int(kl)
		if n.typ == nodeLeaf {
			vl, m := binary.Uvarint(buf[pos:])
			if m <= 0 {
				return nil, fmt.Errorf("btree: corrupt node")
			}
			pos += m
			n.vals[i] = append([]byte(nil), buf[pos:pos+int(vl)]...)
			pos += int(vl)
		}
	}
	return n, nil
}

func (t *BTree) readNode(num int32) (*node, error) {
	p, err := t.bc.Pin(storage.PageID{File: t.file, Num: num})
	if err != nil {
		return nil, err
	}
	//lint:ignore hot-alloc per-page decode builds the node once and is amortized across every tuple read from that leaf; a node cache would remove it entirely (tracked in ROADMAP)
	n, err := decodeNode(p.Data)
	t.bc.Unpin(p, false)
	return n, err
}

func (t *BTree) writeNode(num int32, n *node) error {
	p, err := t.bc.Pin(storage.PageID{File: t.file, Num: num})
	if err != nil {
		return err
	}
	n.encode(p.Data)
	t.bc.Unpin(p, true)
	return nil
}

func (t *BTree) allocNode(n *node) (int32, error) {
	p, err := t.bc.NewPage(t.file)
	if err != nil {
		return 0, err
	}
	n.encode(p.Data)
	num := p.ID.Num
	t.bc.Unpin(p, true)
	return num, nil
}

// childIndex returns the index of the child to follow for key.
func (n *node) childIndex(key []byte) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(key, n.keys[mid]) < 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// leafIndex returns the insertion position of key and whether it is present.
func (n *node) leafIndex(key []byte) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(n.keys[mid], key) {
		case -1:
			lo = mid + 1
		case 1:
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

// Search returns the value stored under key.
func (t *BTree) Search(key []byte) ([]byte, bool, error) {
	num := t.root
	for lvl := t.height; lvl > 1; lvl-- {
		n, err := t.readNode(num)
		if err != nil {
			return nil, false, err
		}
		num = n.children[n.childIndex(key)]
	}
	leaf, err := t.readNode(num)
	if err != nil {
		return nil, false, err
	}
	i, found := leaf.leafIndex(key)
	if !found {
		return nil, false, nil
	}
	return leaf.vals[i], true, nil
}

// Insert upserts key → value.
func (t *BTree) Insert(key, value []byte) error {
	if len(key)+len(value) > t.MaxEntrySize() {
		return fmt.Errorf("btree: entry of %d bytes exceeds max %d", len(key)+len(value), t.MaxEntrySize())
	}
	sepKey, newChild, replaced, err := t.insertAt(t.root, t.height, key, value)
	if err != nil {
		return err
	}
	if newChild != noPage {
		// Root split: new root with two children.
		nr := newNode(nodeInterior)
		nr.keys = [][]byte{sepKey}
		nr.children = []int32{t.root, newChild}
		num, err := t.allocNode(nr)
		if err != nil {
			return err
		}
		t.root = num
		t.height++
	}
	if !replaced {
		t.count++
	}
	return t.syncMeta()
}

// insertAt inserts into the subtree rooted at page num at the given level.
// On split it returns the separator key and new right-sibling page.
func (t *BTree) insertAt(num int32, level int32, key, value []byte) (sep []byte, newPage int32, replaced bool, err error) {
	n, err := t.readNode(num)
	if err != nil {
		return nil, noPage, false, err
	}
	if level == 1 {
		i, found := n.leafIndex(key)
		if found {
			n.vals[i] = value
			replaced = true
		} else {
			n.keys = append(n.keys, nil)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = append([]byte(nil), key...)
			n.vals = append(n.vals, nil)
			copy(n.vals[i+1:], n.vals[i:])
			n.vals[i] = append([]byte(nil), value...)
		}
		return t.finishInsert(num, n, replaced)
	}
	ci := n.childIndex(key)
	childSep, childNew, replaced, err := t.insertAt(n.children[ci], level-1, key, value)
	if err != nil {
		return nil, noPage, false, err
	}
	if childNew == noPage {
		return nil, noPage, replaced, nil
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = childSep
	n.children = append(n.children, 0)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = childNew
	return t.finishInsert(num, n, replaced)
}

// finishInsert writes the node back, splitting if it no longer fits.
func (t *BTree) finishInsert(num int32, n *node, replaced bool) ([]byte, int32, bool, error) {
	pageSize := t.bc.FileManager().PageSize()
	if n.encodedSize() <= pageSize {
		return nil, noPage, replaced, t.writeNode(num, n)
	}
	mid := len(n.keys) / 2
	right := newNode(n.typ)
	var sep []byte
	if n.typ == nodeLeaf {
		right.keys = append(right.keys, n.keys[mid:]...)
		right.vals = append(right.vals, n.vals[mid:]...)
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		sep = append([]byte(nil), right.keys[0]...)
		right.next = n.next
	} else {
		// Interior: separator moves up, not into the right node.
		sep = append([]byte(nil), n.keys[mid]...)
		right.keys = append(right.keys, n.keys[mid+1:]...)
		right.children = append(right.children, n.children[mid+1:]...)
		n.keys = n.keys[:mid]
		n.children = n.children[:mid+1]
	}
	rNum, err := t.allocNode(right)
	if err != nil {
		return nil, noPage, false, err
	}
	if n.typ == nodeLeaf {
		n.next = rNum
	}
	if err := t.writeNode(num, n); err != nil {
		return nil, noPage, false, err
	}
	return sep, rNum, replaced, nil
}

// Delete removes key, reporting whether it was present. Leaves may
// underflow; they are not merged (lazy deletion).
func (t *BTree) Delete(key []byte) (bool, error) {
	num := t.root
	for lvl := t.height; lvl > 1; lvl-- {
		n, err := t.readNode(num)
		if err != nil {
			return false, err
		}
		num = n.children[n.childIndex(key)]
	}
	leaf, err := t.readNode(num)
	if err != nil {
		return false, err
	}
	i, found := leaf.leafIndex(key)
	if !found {
		return false, nil
	}
	leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
	leaf.vals = append(leaf.vals[:i], leaf.vals[i+1:]...)
	if err := t.writeNode(num, leaf); err != nil {
		return false, err
	}
	t.count--
	return true, t.syncMeta()
}

// Scan visits entries with lo <= key <= hi in order (nil bounds are
// unbounded). fn returning false stops the scan early.
func (t *BTree) Scan(lo, hi []byte, fn func(key, value []byte) bool) error {
	num := t.root
	for lvl := t.height; lvl > 1; lvl-- {
		n, err := t.readNode(num)
		if err != nil {
			return err
		}
		if lo == nil {
			num = n.children[0]
		} else {
			num = n.children[n.childIndex(lo)]
		}
	}
	for num != noPage {
		leaf, err := t.readNode(num)
		if err != nil {
			return err
		}
		start := 0
		if lo != nil {
			start, _ = leaf.leafIndex(lo)
		}
		for i := start; i < len(leaf.keys); i++ {
			if hi != nil && bytes.Compare(leaf.keys[i], hi) > 0 {
				return nil
			}
			if !fn(leaf.keys[i], leaf.vals[i]) {
				return nil
			}
		}
		num = leaf.next
	}
	return nil
}

// BulkLoad builds the tree bottom-up from strictly-ascending (key, value)
// pairs supplied by next (which returns ok=false at end). The tree must be
// empty. This is the efficient sorted-load path that Section V-C contrasts
// with linear hashing.
func (t *BTree) BulkLoad(next func() (key, value []byte, ok bool)) error {
	if t.count != 0 {
		return fmt.Errorf("btree: bulk load into non-empty tree")
	}
	pageSize := t.bc.FileManager().PageSize()
	fill := pageSize * 9 / 10 // leave headroom for future inserts

	var (
		leaf     = newNode(nodeLeaf)
		prevLeaf = noPage
		pages    []int32  // finished pages at the current level
		seps     [][]byte // first key of each finished page
		total    int64
		lastKey  []byte
	)

	flushLeaf := func() error {
		if len(leaf.keys) == 0 {
			return nil
		}
		num, err := t.allocNode(leaf)
		if err != nil {
			return err
		}
		if prevLeaf != noPage {
			pn, err := t.readNode(prevLeaf)
			if err != nil {
				return err
			}
			pn.next = num
			if err := t.writeNode(prevLeaf, pn); err != nil {
				return err
			}
		}
		prevLeaf = num
		pages = append(pages, num)
		seps = append(seps, append([]byte(nil), leaf.keys[0]...))
		leaf = newNode(nodeLeaf)
		return nil
	}

	for {
		k, v, ok := next()
		if !ok {
			break
		}
		if lastKey != nil && bytes.Compare(k, lastKey) <= 0 {
			return fmt.Errorf("btree: bulk load input not strictly ascending")
		}
		lastKey = append(lastKey[:0], k...)
		if len(k)+len(v) > t.MaxEntrySize() {
			return fmt.Errorf("btree: entry exceeds max size")
		}
		leaf.keys = append(leaf.keys, append([]byte(nil), k...))
		leaf.vals = append(leaf.vals, append([]byte(nil), v...))
		total++
		if leaf.encodedSize() >= fill {
			if err := flushLeaf(); err != nil {
				return err
			}
		}
	}
	if err := flushLeaf(); err != nil {
		return err
	}
	if total == 0 {
		return t.syncMeta()
	}

	// Build interior levels until a single page remains.
	height := int32(1)
	for len(pages) > 1 {
		var nextPages []int32
		var nextSeps [][]byte
		i := 0
		for i < len(pages) {
			in := newNode(nodeInterior)
			in.children = []int32{pages[i]}
			firstSep := seps[i]
			i++
			for i < len(pages) && in.encodedSize() < fill {
				in.keys = append(in.keys, seps[i])
				in.children = append(in.children, pages[i])
				i++
			}
			num, err := t.allocNode(in)
			if err != nil {
				return err
			}
			nextPages = append(nextPages, num)
			nextSeps = append(nextSeps, firstSep)
		}
		pages, seps = nextPages, nextSeps
		height++
	}
	t.root = pages[0]
	t.height = height
	t.count = total
	if err := t.syncMeta(); err != nil {
		return err
	}
	// Deep structural walk of the freshly built tree in invariant builds.
	return check.Run(t)
}
