package btree

import (
	"testing"

	"asterix/internal/storage"
)

// rawTree builds a tree without newTree's cleanup validation, so tests
// can corrupt it deliberately.
func rawTree(t *testing.T) *BTree {
	t.Helper()
	fm, err := storage.NewFileManager(t.TempDir(), 512)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fm.Close() })
	bc := storage.NewBufferCache(fm, 64)
	id, err := fm.Open("bt")
	if err != nil {
		t.Fatal(err)
	}
	bt, err := Open(bc, id)
	if err != nil {
		t.Fatal(err)
	}
	return bt
}

func TestValidateCleanTree(t *testing.T) {
	bt := rawTree(t)
	for i := 0; i < 500; i++ {
		if err := bt.Insert(ikey(i), ikey(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt.Validate(); err != nil {
		t.Fatalf("healthy tree failed validation: %v", err)
	}
}

func TestValidateDetectsCountMismatch(t *testing.T) {
	bt := rawTree(t)
	for i := 0; i < 50; i++ {
		if err := bt.Insert(ikey(i), ikey(i)); err != nil {
			t.Fatal(err)
		}
	}
	bt.count += 5
	if err := bt.Validate(); err == nil {
		t.Fatal("validator missed a meta-count mismatch")
	}
	bt.count -= 5
}

func TestValidateDetectsKeyDisorder(t *testing.T) {
	bt := rawTree(t)
	for i := 0; i < 500; i++ {
		if err := bt.Insert(ikey(i), ikey(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Swap two keys in the leftmost leaf.
	num := bt.root
	for {
		n, err := bt.readNode(num)
		if err != nil {
			t.Fatal(err)
		}
		if n.typ == nodeLeaf {
			if len(n.keys) < 2 {
				t.Fatal("leftmost leaf too small to corrupt")
			}
			n.keys[0], n.keys[1] = n.keys[1], n.keys[0]
			if err := bt.writeNode(num, n); err != nil {
				t.Fatal(err)
			}
			break
		}
		num = n.children[0]
	}
	if err := bt.Validate(); err == nil {
		t.Fatal("validator missed out-of-order keys")
	}
}
