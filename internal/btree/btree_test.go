package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"asterix/internal/check"
	"asterix/internal/storage"
)

func newTree(t testing.TB, pageSize, frames int) *BTree {
	t.Helper()
	fm, err := storage.NewFileManager(t.TempDir(), pageSize)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fm.Close() })
	bc := storage.NewBufferCache(fm, frames)
	id, err := fm.Open("bt")
	if err != nil {
		t.Fatal(err)
	}
	bt, err := Open(bc, id)
	if err != nil {
		t.Fatal(err)
	}
	// Every test ends with a deep structural walk and a pin-leak check.
	t.Cleanup(func() {
		check.MustValidate(t, bt)
		if n := bc.Pinned(); n != 0 {
			t.Errorf("buffer cache still holds %d pins after the test", n)
		}
	})
	return bt
}

func ikey(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func TestInsertSearchSmall(t *testing.T) {
	bt := newTree(t, 512, 64)
	for i := 0; i < 100; i++ {
		if err := bt.Insert(ikey(i*2), []byte(fmt.Sprintf("v%d", i*2))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		v, ok, err := bt.Search(ikey(i * 2))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(v) != fmt.Sprintf("v%d", i*2) {
			t.Fatalf("key %d: ok=%v v=%q", i*2, ok, v)
		}
		if _, ok, _ := bt.Search(ikey(i*2 + 1)); ok {
			t.Fatalf("key %d should be absent", i*2+1)
		}
	}
	if bt.Count() != 100 {
		t.Errorf("count = %d", bt.Count())
	}
}

func TestInsertUpsertsReplaces(t *testing.T) {
	bt := newTree(t, 512, 64)
	if err := bt.Insert([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := bt.Insert([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := bt.Search([]byte("k"))
	if !ok || string(v) != "v2" {
		t.Fatalf("got %q", v)
	}
	if bt.Count() != 1 {
		t.Errorf("replace should not grow count: %d", bt.Count())
	}
}

func TestSplitsGrowHeight(t *testing.T) {
	bt := newTree(t, 256, 256) // small pages force splits
	n := 2000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if err := bt.Insert(ikey(i), ikey(i)); err != nil {
			t.Fatal(err)
		}
	}
	if bt.Height() < 3 {
		t.Errorf("expected height >= 3 after %d inserts into 256B pages, got %d", n, bt.Height())
	}
	for i := 0; i < n; i++ {
		if _, ok, _ := bt.Search(ikey(i)); !ok {
			t.Fatalf("lost key %d", i)
		}
	}
}

func TestScanRange(t *testing.T) {
	bt := newTree(t, 256, 256)
	for i := 0; i < 500; i++ {
		if err := bt.Insert(ikey(i), ikey(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []int
	err := bt.Scan(ikey(100), ikey(199), func(k, v []byte) bool {
		got = append(got, int(binary.BigEndian.Uint64(k)))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("scan returned %d keys", len(got))
	}
	for i, k := range got {
		if k != 100+i {
			t.Fatalf("scan out of order at %d: %d", i, k)
		}
	}
	// Full scan, unbounded.
	cnt := 0
	if err := bt.Scan(nil, nil, func(k, v []byte) bool { cnt++; return true }); err != nil {
		t.Fatal(err)
	}
	if cnt != 500 {
		t.Errorf("full scan found %d", cnt)
	}
	// Early stop.
	cnt = 0
	bt.Scan(nil, nil, func(k, v []byte) bool { cnt++; return cnt < 10 })
	if cnt != 10 {
		t.Errorf("early stop at %d", cnt)
	}
}

func TestDelete(t *testing.T) {
	bt := newTree(t, 256, 256)
	for i := 0; i < 300; i++ {
		bt.Insert(ikey(i), ikey(i))
	}
	for i := 0; i < 300; i += 2 {
		ok, err := bt.Delete(ikey(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("delete %d reported absent", i)
		}
	}
	if ok, _ := bt.Delete(ikey(0)); ok {
		t.Error("double delete should report absent")
	}
	for i := 0; i < 300; i++ {
		_, ok, _ := bt.Search(ikey(i))
		if (i%2 == 0) == ok {
			t.Fatalf("key %d presence wrong: %v", i, ok)
		}
	}
	if bt.Count() != 150 {
		t.Errorf("count = %d", bt.Count())
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	fm, err := storage.NewFileManager(dir, 512)
	if err != nil {
		t.Fatal(err)
	}
	bc := storage.NewBufferCache(fm, 32)
	id, _ := fm.Open("bt")
	bt, err := Open(bc, id)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		bt.Insert(ikey(i), []byte("x"))
	}
	if err := bc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	fm.Close()

	fm2, err := storage.NewFileManager(dir, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer fm2.Close()
	bc2 := storage.NewBufferCache(fm2, 32)
	id2, _ := fm2.Open("bt")
	bt2, err := Open(bc2, id2)
	if err != nil {
		t.Fatal(err)
	}
	if bt2.Count() != 200 {
		t.Fatalf("reopened count = %d", bt2.Count())
	}
	for i := 0; i < 200; i++ {
		if _, ok, _ := bt2.Search(ikey(i)); !ok {
			t.Fatalf("key %d lost across reopen", i)
		}
	}
}

func TestBulkLoadAndSearch(t *testing.T) {
	bt := newTree(t, 512, 128)
	n := 5000
	i := 0
	err := bt.BulkLoad(func() ([]byte, []byte, bool) {
		if i >= n {
			return nil, nil, false
		}
		k := ikey(i)
		i++
		return k, k, true
	})
	if err != nil {
		t.Fatal(err)
	}
	if bt.Count() != int64(n) {
		t.Fatalf("count = %d", bt.Count())
	}
	for _, probe := range []int{0, 1, 999, 2500, 4999} {
		v, ok, err := bt.Search(ikey(probe))
		if err != nil || !ok || !bytes.Equal(v, ikey(probe)) {
			t.Fatalf("probe %d: ok=%v err=%v", probe, ok, err)
		}
	}
	if _, ok, _ := bt.Search(ikey(n)); ok {
		t.Error("absent key found")
	}
	// Scan order intact.
	prev := -1
	bt.Scan(nil, nil, func(k, v []byte) bool {
		cur := int(binary.BigEndian.Uint64(k))
		if cur <= prev {
			t.Fatalf("scan out of order: %d after %d", cur, prev)
		}
		prev = cur
		return true
	})
	if prev != n-1 {
		t.Errorf("scan ended at %d", prev)
	}
	// Inserts after bulk load still work.
	if err := bt.Insert(ikey(n+10), []byte("late")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := bt.Search(ikey(n + 10)); !ok || string(v) != "late" {
		t.Error("post-bulk-load insert lost")
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	bt := newTree(t, 512, 32)
	seq := [][]byte{ikey(1), ikey(3), ikey(2)}
	i := 0
	err := bt.BulkLoad(func() ([]byte, []byte, bool) {
		if i >= len(seq) {
			return nil, nil, false
		}
		k := seq[i]
		i++
		return k, k, true
	})
	if err == nil {
		t.Error("unsorted bulk load must fail")
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	bt := newTree(t, 512, 32)
	if err := bt.BulkLoad(func() ([]byte, []byte, bool) { return nil, nil, false }); err != nil {
		t.Fatal(err)
	}
	if bt.Count() != 0 {
		t.Error("empty bulk load should leave empty tree")
	}
	if _, ok, _ := bt.Search([]byte("x")); ok {
		t.Error("search in empty tree")
	}
}

func TestRejectsOversizeEntry(t *testing.T) {
	bt := newTree(t, 256, 32)
	big := make([]byte, 300)
	if err := bt.Insert([]byte("k"), big); err == nil {
		t.Error("oversize entry must be rejected")
	}
}

// Property: tree behaves like a sorted map under random interleaved
// operations.
func TestPropMatchesReferenceMap(t *testing.T) {
	bt := newTree(t, 256, 512)
	ref := map[string]string{}
	r := rand.New(rand.NewSource(77))
	for op := 0; op < 5000; op++ {
		k := fmt.Sprintf("key%04d", r.Intn(800))
		switch r.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("val%d", op)
			if err := bt.Insert([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			ref[k] = v
		case 2:
			ok, err := bt.Delete([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			_, inRef := ref[k]
			if ok != inRef {
				t.Fatalf("delete(%s) = %v, ref has %v", k, ok, inRef)
			}
			delete(ref, k)
		}
	}
	if bt.Count() != int64(len(ref)) {
		t.Fatalf("count %d != ref %d", bt.Count(), len(ref))
	}
	// Full scan must equal the sorted reference.
	var refKeys []string
	for k := range ref {
		refKeys = append(refKeys, k)
	}
	sort.Strings(refKeys)
	i := 0
	bt.Scan(nil, nil, func(k, v []byte) bool {
		if i >= len(refKeys) || string(k) != refKeys[i] || string(v) != ref[refKeys[i]] {
			t.Fatalf("scan mismatch at %d: %s", i, k)
		}
		i++
		return true
	})
	if i != len(refKeys) {
		t.Fatalf("scan visited %d of %d", i, len(refKeys))
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	bt := newTree(b, 4096, 1024)
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Insert(ikey(r.Intn(1<<30)), ikey(i))
	}
}

func BenchmarkSearchHot(b *testing.B) {
	bt := newTree(b, 4096, 1024)
	for i := 0; i < 10000; i++ {
		bt.Insert(ikey(i), ikey(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bt.Search(ikey(i % 10000))
	}
}
