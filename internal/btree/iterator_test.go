package btree

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestIteratorFullScan(t *testing.T) {
	bt := newTree(t, 256, 256)
	n := 1000
	for i := 0; i < n; i++ {
		if err := bt.Insert(ikey(i), ikey(i*2)); err != nil {
			t.Fatal(err)
		}
	}
	it := bt.NewIterator(nil, nil)
	count := 0
	prev := -1
	for ; it.Valid(); it.Next() {
		k := int(binary.BigEndian.Uint64(it.Key()))
		if k <= prev {
			t.Fatalf("out of order: %d after %d", k, prev)
		}
		if !bytes.Equal(it.Value(), ikey(k*2)) {
			t.Fatalf("value mismatch at %d", k)
		}
		prev = k
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("visited %d of %d", count, n)
	}
}

func TestIteratorBounds(t *testing.T) {
	bt := newTree(t, 256, 256)
	for i := 0; i < 500; i++ {
		bt.Insert(ikey(i), ikey(i))
	}
	it := bt.NewIterator(ikey(100), ikey(199))
	first, last, count := -1, -1, 0
	for ; it.Valid(); it.Next() {
		k := int(binary.BigEndian.Uint64(it.Key()))
		if first == -1 {
			first = k
		}
		last = k
		count++
	}
	if first != 100 || last != 199 || count != 100 {
		t.Fatalf("bounds: first=%d last=%d count=%d", first, last, count)
	}
}

func TestIteratorLoBetweenKeys(t *testing.T) {
	bt := newTree(t, 256, 64)
	for i := 0; i < 100; i += 10 {
		bt.Insert(ikey(i), ikey(i))
	}
	// lo = 15 (absent) must position at 20.
	it := bt.NewIterator(ikey(15), nil)
	if !it.Valid() {
		t.Fatal("iterator should be valid")
	}
	if k := int(binary.BigEndian.Uint64(it.Key())); k != 20 {
		t.Fatalf("positioned at %d, want 20", k)
	}
}

func TestIteratorEmptyTree(t *testing.T) {
	bt := newTree(t, 256, 16)
	it := bt.NewIterator(nil, nil)
	if it.Valid() {
		t.Fatal("empty tree iterator should be invalid")
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

func TestIteratorEmptyRange(t *testing.T) {
	bt := newTree(t, 256, 64)
	for i := 0; i < 100; i++ {
		bt.Insert(ikey(i), ikey(i))
	}
	it := bt.NewIterator(ikey(500), ikey(600))
	if it.Valid() {
		t.Fatalf("range beyond data should be empty, got %x", it.Key())
	}
}

func TestIteratorAcrossEmptiedLeaves(t *testing.T) {
	bt := newTree(t, 256, 256)
	for i := 0; i < 400; i++ {
		bt.Insert(ikey(i), ikey(i))
	}
	// Empty out a middle band of keys (lazy deletion leaves empty leaves
	// in the chain; the iterator must skip them).
	for i := 100; i < 300; i++ {
		if ok, err := bt.Delete(ikey(i)); err != nil || !ok {
			t.Fatal(err, ok)
		}
	}
	it := bt.NewIterator(ikey(50), ikey(350))
	var seen []int
	for ; it.Valid(); it.Next() {
		seen = append(seen, int(binary.BigEndian.Uint64(it.Key())))
	}
	want := 0
	for i := 50; i <= 350; i++ {
		if i < 100 || i >= 300 {
			want++
		}
	}
	if len(seen) != want {
		t.Fatalf("saw %d keys, want %d", len(seen), want)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatal("order violated across emptied leaves")
		}
	}
}
