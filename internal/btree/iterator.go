package btree

import "bytes"

// Iterator is a pull-style cursor over a key range, used by LSM k-way
// merges where callback-style Scan cannot interleave multiple sources.
type Iterator struct {
	t    *BTree
	hi   []byte
	node *node
	pos  int
	err  error
	done bool
}

// NewIterator positions a cursor at the first key >= lo (nil = min); it
// yields keys up to hi inclusive (nil = max).
func (t *BTree) NewIterator(lo, hi []byte) *Iterator {
	//lint:ignore hot-alloc per-scan cursor setup: one allocation per NewIterator, not per Next
	it := &Iterator{t: t, hi: hi}
	num := t.root
	for lvl := t.height; lvl > 1; lvl-- {
		n, err := t.readNode(num)
		if err != nil {
			it.err = err
			it.done = true
			return it
		}
		if lo == nil {
			num = n.children[0]
		} else {
			num = n.children[n.childIndex(lo)]
		}
	}
	leaf, err := t.readNode(num)
	if err != nil {
		it.err = err
		it.done = true
		return it
	}
	it.node = leaf
	if lo != nil {
		it.pos, _ = leaf.leafIndex(lo)
	}
	it.skipEmptyLeaves()
	return it
}

// skipEmptyLeaves advances across exhausted leaves.
func (it *Iterator) skipEmptyLeaves() {
	for it.node != nil && it.pos >= len(it.node.keys) {
		if it.node.next == noPage {
			it.done = true
			it.node = nil
			return
		}
		n, err := it.t.readNode(it.node.next)
		if err != nil {
			it.err = err
			it.done = true
			it.node = nil
			return
		}
		it.node = n
		it.pos = 0
	}
}

// Valid reports whether the cursor is on an entry.
func (it *Iterator) Valid() bool {
	if it.done || it.node == nil {
		return false
	}
	if it.hi != nil && bytes.Compare(it.node.keys[it.pos], it.hi) > 0 {
		return false
	}
	return true
}

// Key returns the current key (valid until Next).
func (it *Iterator) Key() []byte { return it.node.keys[it.pos] }

// Value returns the current value (valid until Next).
func (it *Iterator) Value() []byte { return it.node.vals[it.pos] }

// Next advances the cursor.
func (it *Iterator) Next() {
	it.pos++
	it.skipEmptyLeaves()
}

// Err returns any I/O error the iterator hit.
func (it *Iterator) Err() error { return it.err }
