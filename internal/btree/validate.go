package btree

import (
	"bytes"
	"fmt"
)

// Validate walks the entire tree and verifies its deep structural
// invariants:
//
//   - every node's keys are strictly increasing;
//   - every key lies within the separator bounds inherited from its
//     ancestors (child i of an interior node holds keys k with
//     keys[i-1] <= k < keys[i]);
//   - interior nodes have exactly len(keys)+1 children; leaves have
//     exactly one value per key;
//   - every leaf sits at depth == Height() (uniform depth);
//   - the leaf sibling chain visits exactly the in-order leaves and
//     terminates;
//   - every node re-encodes within the page size;
//   - the meta entry count matches the number of leaf entries.
//
// Deletion is lazy by design, so no minimum occupancy is enforced.
// Validate is O(n) and intended for tests and the check framework's
// opt-in production hooks, not the hot path.
func (t *BTree) Validate() error {
	pageSize := t.bc.FileManager().PageSize()
	if t.height < 1 {
		return fmt.Errorf("btree: height %d < 1", t.height)
	}

	type leafLink struct {
		num  int32
		next int32
	}
	var leaves []leafLink
	var entries int64

	var walk func(num, depth int32, lo, hi []byte) error
	walk = func(num, depth int32, lo, hi []byte) error {
		n, err := t.readNode(num)
		if err != nil {
			return err
		}
		if sz := n.encodedSize(); sz > pageSize {
			return fmt.Errorf("btree: node %d encodes to %d bytes, page size is %d", num, sz, pageSize)
		}
		for i := 1; i < len(n.keys); i++ {
			if bytes.Compare(n.keys[i-1], n.keys[i]) >= 0 {
				return fmt.Errorf("btree: node %d keys not strictly increasing at index %d", num, i)
			}
		}
		for i, k := range n.keys {
			if lo != nil && bytes.Compare(k, lo) < 0 {
				return fmt.Errorf("btree: node %d key %d below its subtree's lower bound", num, i)
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				return fmt.Errorf("btree: node %d key %d not below its subtree's upper bound", num, i)
			}
		}
		switch n.typ {
		case nodeLeaf:
			if depth != t.height {
				return fmt.Errorf("btree: leaf %d at depth %d, want uniform depth %d", num, depth, t.height)
			}
			if len(n.vals) != len(n.keys) {
				return fmt.Errorf("btree: leaf %d has %d keys but %d values", num, len(n.keys), len(n.vals))
			}
			entries += int64(len(n.keys))
			leaves = append(leaves, leafLink{num: num, next: n.next})
		case nodeInterior:
			if depth >= t.height {
				return fmt.Errorf("btree: interior node %d at depth %d >= height %d", num, depth, t.height)
			}
			if len(n.children) != len(n.keys)+1 {
				return fmt.Errorf("btree: interior node %d has %d keys but %d children", num, len(n.keys), len(n.children))
			}
			for i, c := range n.children {
				clo, chi := lo, hi
				if i > 0 {
					clo = n.keys[i-1]
				}
				if i < len(n.keys) {
					chi = n.keys[i]
				}
				if err := walk(c, depth+1, clo, chi); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("btree: node %d has unknown type %d", num, n.typ)
		}
		return nil
	}
	if err := walk(t.root, 1, nil, nil); err != nil {
		return err
	}

	for i, l := range leaves {
		want := noPage
		if i+1 < len(leaves) {
			want = leaves[i+1].num
		}
		if l.next != want {
			return fmt.Errorf("btree: leaf %d links to %d, want %d (in-order chain)", l.num, l.next, want)
		}
	}
	if entries != t.count {
		return fmt.Errorf("btree: meta count %d but leaves hold %d entries", t.count, entries)
	}
	return nil
}
