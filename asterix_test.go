package asterix

import (
	"context"
	"testing"
	"time"

	"asterix/internal/adm"
)

func openDB(t testing.TB) *DB {
	t.Helper()
	fixed, _ := time.Parse(time.RFC3339, "2019-04-01T00:00:00Z")
	db, err := Open(Config{DataDir: t.TempDir(), Now: func() time.Time { return fixed }})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestOpenRequiresDataDir(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("missing DataDir must fail")
	}
}

func TestPublicAPISmoke(t *testing.T) {
	db := openDB(t)
	ctx := context.Background()
	_, err := db.Execute(ctx, `
		CREATE TYPE T AS {id: int, name: string};
		CREATE DATASET D(T) PRIMARY KEY id;
		UPSERT INTO D ([{"id": 1, "name": "ann"}, {"id": 2, "name": "bob"}]);
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(ctx, `SELECT VALUE d.name FROM D d ORDER BY d.id;`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.JSONRows(); len(got) != 2 || got[0] != `"ann"` || got[1] != `"bob"` {
		t.Fatalf("rows: %v", got)
	}

	// Programmatic record API.
	if err := db.Upsert("D", adm.NewObject(
		adm.Field{Name: "id", Value: adm.Int64(3)},
		adm.Field{Name: "name", Value: adm.String("cal")},
	)); err != nil {
		t.Fatal(err)
	}
	rec, ok, err := db.Get("D", adm.Int64(3))
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	if rec.Get("name").String() != `"cal"` {
		t.Fatalf("rec: %v", rec)
	}
	if err := db.Delete("D", adm.Int64(3)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get("D", adm.Int64(3)); ok {
		t.Fatal("delete failed")
	}
}

func TestAQLPeerLanguage(t *testing.T) {
	db := openDB(t)
	ctx := context.Background()
	if _, err := db.Execute(ctx, `
		CREATE TYPE T AS {id: int, v: int};
		CREATE DATASET D(T) PRIMARY KEY id;
	`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := db.Upsert("D", adm.NewObject(
			adm.Field{Name: "id", Value: adm.Int64(int64(i))},
			adm.Field{Name: "v", Value: adm.Int64(int64(i * 10))},
		)); err != nil {
			t.Fatal(err)
		}
	}
	sqlRes, err := db.Query(ctx, `SELECT VALUE d.v FROM D d WHERE d.id < 3 ORDER BY d.v;`)
	if err != nil {
		t.Fatal(err)
	}
	aqlRes, err := db.QueryAQL(ctx, `
		for $d in dataset D
		where $d.id < 3
		order by $d.v
		return $d.v`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sqlRes.Rows) != len(aqlRes.Rows) {
		t.Fatalf("SQL++ %d rows, AQL %d rows", len(sqlRes.Rows), len(aqlRes.Rows))
	}
	for i := range sqlRes.Rows {
		if adm.Compare(sqlRes.Rows[i], aqlRes.Rows[i]) != 0 {
			t.Fatalf("row %d: %v vs %v", i, sqlRes.Rows[i], aqlRes.Rows[i])
		}
	}
}

func TestExplain(t *testing.T) {
	db := openDB(t)
	if _, err := db.Execute(context.Background(), `
		CREATE TYPE T AS {id: int};
		CREATE DATASET D(T) PRIMARY KEY id;
	`); err != nil {
		t.Fatal(err)
	}
	plan, err := db.Explain(`SELECT VALUE d FROM D d WHERE d.id = 1;`)
	if err != nil {
		t.Fatal(err)
	}
	if plan == "" {
		t.Fatal("empty plan")
	}
}

func TestMergePolicyConfig(t *testing.T) {
	for _, p := range []string{"", "constant", "tiered", "none"} {
		db, err := Open(Config{DataDir: t.TempDir(), MergePolicy: p})
		if err != nil {
			t.Fatalf("policy %q: %v", p, err)
		}
		db.Close()
	}
}
