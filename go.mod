module asterix

go 1.22
