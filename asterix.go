// Package asterix is a Go reproduction of Apache AsterixDB — the Big Data
// Management System described in "AsterixDB Mid-Flight: A Case Study in
// Building Systems in Academia" (Carey, ICDE 2019). It provides an
// embedded BDMS: a NoSQL-style data model (ADM), SQL++ and AQL query
// languages, a rule-based parallel query optimizer (Algebricks), a
// partitioned-parallel dataflow runtime (Hyracks), and LSM-based storage
// with B+tree, R-tree, and inverted keyword secondary indexes.
//
// Quick start:
//
//	db, err := asterix.Open(asterix.Config{DataDir: "/tmp/asterix"})
//	defer db.Close()
//	db.Execute(ctx, `CREATE TYPE T AS {id: int}; CREATE DATASET D(T) PRIMARY KEY id;`)
//	db.Execute(ctx, `UPSERT INTO D ({"id": 1, "greeting": "hello"});`)
//	res, err := db.Query(ctx, `SELECT VALUE d.greeting FROM D d;`)
package asterix

import (
	"context"
	"time"

	"asterix/internal/adm"
	"asterix/internal/aql"
	"asterix/internal/core"
	"asterix/internal/lsm"
	"asterix/internal/obs"
)

// Config configures a DB instance.
type Config struct {
	// DataDir is the root directory for all persistent state (required).
	DataDir string
	// Partitions is the number of storage partitions per dataset — the
	// simulated shared-nothing nodes (default 2).
	Partitions int
	// Nodes is the dataflow cluster's node-controller count (default =
	// Partitions).
	Nodes int
	// PageSize is the buffer-cache page size in bytes (default 8192).
	PageSize int
	// FrameSize is the dataflow runtime's frame (batch) size in tuples
	// (default 256).
	FrameSize int
	// TotalMemory is the instance-wide memory budget in bytes. When set,
	// the memory governor splits it across the buffer cache, LSM memory
	// components, and operator working memory; any of the explicit knobs
	// below carve their share out of it. When zero, the explicit knobs
	// (or their defaults) apply and the total is their sum.
	TotalMemory int64
	// BufferPages sizes the buffer cache in pages (default 4096, or
	// TotalMemory/4 when TotalMemory is set).
	BufferPages int
	// MemComponentPool bounds the sum of all LSM memory components in
	// bytes; the governor flushes the earliest-dirty component when the
	// pool overflows (default 4x MemComponentBudget, or TotalMemory/4).
	MemComponentPool int
	// MemComponentBudget bounds each LSM memory component in bytes
	// (default 4 MiB).
	MemComponentBudget int
	// WorkingMemory bounds the shared operator working-memory pool in
	// bytes (default 32 MiB, or the TotalMemory remainder).
	WorkingMemory int
	// AdmitTimeout bounds how long a query waits for working-memory
	// admission before failing retriably (default 10s).
	AdmitTimeout time.Duration
	// MergePolicy selects the LSM merge policy: "constant" (default),
	// "tiered", or "none".
	MergePolicy string
	// OptimizerOff disables the rule-based plan optimizer: queries run
	// exactly as translated (equivalence testing, worst-case baselines).
	OptimizerOff bool
	// OptimizerDisable names individual optimizer rules to skip
	// (experiment ablations).
	OptimizerDisable []string
	// Now overrides the statement clock (tests and reproducible runs).
	Now func() time.Time
}

// DB is an embedded AsterixDB instance.
type DB struct {
	engine *core.Engine
}

// Result is the outcome of one statement: Rows for queries, Count for DML.
type Result = core.Result

// Value is an ADM value (the data model of query results).
type Value = adm.Value

// Open opens (creating if needed) a database instance rooted at
// cfg.DataDir, running crash recovery from its write-ahead log.
func Open(cfg Config) (*DB, error) {
	var policy lsm.MergePolicy
	switch cfg.MergePolicy {
	case "", "constant":
		policy = lsm.ConstantPolicy{Components: 4}
	case "tiered":
		policy = lsm.TieredPolicy{}
	case "none":
		policy = lsm.NoMergePolicy{}
	}
	eng, err := core.Open(core.Config{
		DataDir:            cfg.DataDir,
		Partitions:         cfg.Partitions,
		Nodes:              cfg.Nodes,
		PageSize:           cfg.PageSize,
		FrameSize:          cfg.FrameSize,
		TotalMemory:        cfg.TotalMemory,
		BufferPages:        cfg.BufferPages,
		MemComponentPool:   cfg.MemComponentPool,
		MemComponentBudget: cfg.MemComponentBudget,
		WorkingMemory:      cfg.WorkingMemory,
		AdmitTimeout:       cfg.AdmitTimeout,
		MergePolicy:        policy,
		OptimizerOff:       cfg.OptimizerOff,
		OptimizerDisable:   cfg.OptimizerDisable,
		Now:                cfg.Now,
	})
	if err != nil {
		return nil, err
	}
	return &DB{engine: eng}, nil
}

// Close flushes and closes the instance.
func (db *DB) Close() error { return db.engine.Close() }

// Execute runs a ;-separated SQL++ script, returning one Result per
// statement.
func (db *DB) Execute(ctx context.Context, script string) ([]Result, error) {
	return db.engine.Execute(ctx, script)
}

// Query runs a script and returns the last statement's result (typically
// a single query).
func (db *DB) Query(ctx context.Context, src string) (*Result, error) {
	return db.engine.Query(ctx, src)
}

// QueryAQL runs a query written in AQL, the system's original (now
// deprecated) query language. AQL parses to the same AST as SQL++ and
// shares the whole compilation and runtime stack — the "peer language"
// architecture the paper describes.
func (db *DB) QueryAQL(ctx context.Context, src string) (*Result, error) {
	q, err := aql.Parse(src)
	if err != nil {
		return nil, err
	}
	return db.engine.QueryAST(ctx, q)
}

// Explain returns the optimized logical plan for a query.
func (db *DB) Explain(src string) (string, error) { return db.engine.Explain(src) }

// Metrics returns the instance's observability registry: counters,
// gauges, and histograms published by every subsystem (see
// docs/OBSERVABILITY.md).
func (db *DB) Metrics() *obs.Registry { return db.engine.Metrics() }

// Checkpoint flushes all LSM memory components and truncates the
// recovery log's redo window.
func (db *DB) Checkpoint() error { return db.engine.Checkpoint() }

// Upsert programmatically inserts or replaces one record (object) in a
// dataset, with full WAL logging and index maintenance.
func (db *DB) Upsert(dataset string, record *adm.Object) error {
	return db.engine.UpsertValue(dataset, record)
}

// Get fetches a record by primary key.
func (db *DB) Get(dataset string, pk ...adm.Value) (*adm.Object, bool, error) {
	return db.engine.GetKey(dataset, pk...)
}

// Delete removes a record by primary key.
func (db *DB) Delete(dataset string, pk ...adm.Value) error {
	return db.engine.DeleteKey(dataset, pk...)
}

// Engine exposes the underlying engine for advanced integrations (feeds,
// benchmarks, the HTTP server).
func (db *DB) Engine() *core.Engine { return db.engine }
