// Command asterix is the interactive SQL++ shell over an embedded engine.
//
// Usage:
//
//	asterix -data /tmp/asterix                # REPL
//	asterix -data /tmp/asterix -c 'SELECT VALUE 1;'
//	asterix -data /tmp/asterix -f script.sqlpp
//	asterix -data /tmp/asterix -aql -c 'for $x in dataset D return $x'
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"asterix/internal/adm"
	"asterix/internal/aql"
	"asterix/internal/core"
)

func main() {
	var (
		dataDir    = flag.String("data", "./asterix-data", "data directory")
		partitions = flag.Int("partitions", 2, "storage partitions per dataset")
		command    = flag.String("c", "", "execute this script and exit")
		file       = flag.String("f", "", "execute this script file and exit")
		useAQL     = flag.Bool("aql", false, "treat input as AQL (deprecated peer language)")
		explain    = flag.Bool("explain", false, "print optimized plans instead of executing")
	)
	flag.Parse()

	eng, err := core.Open(core.Config{DataDir: *dataDir, Partitions: *partitions})
	if err != nil {
		log.Fatalf("asterix: %v", err)
	}
	defer eng.Close()

	run := func(script string) {
		if err := execute(eng, script, *useAQL, *explain); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}

	switch {
	case *command != "":
		run(*command)
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			log.Fatalf("asterix: %v", err)
		}
		run(string(data))
	default:
		repl(eng, *useAQL, *explain)
	}
}

func execute(eng *core.Engine, script string, useAQL, explain bool) error {
	ctx := context.Background()
	if useAQL {
		q, err := aql.Parse(script)
		if err != nil {
			return err
		}
		res, err := eng.QueryAST(ctx, q)
		if err != nil {
			return err
		}
		printResult(*res)
		return nil
	}
	if explain {
		plan, err := eng.Explain(script)
		if err != nil {
			return err
		}
		fmt.Print(plan)
		return nil
	}
	results, err := eng.Execute(ctx, script)
	for _, r := range results {
		printResult(r)
	}
	return err
}

func printResult(r core.Result) {
	switch r.Kind {
	case core.ResultQuery:
		for _, v := range r.Rows {
			fmt.Println(adm.ToJSON(v))
		}
		fmt.Printf("-- %d row(s)\n", len(r.Rows))
	case core.ResultDML:
		fmt.Printf("-- %d record(s) affected\n", r.Count)
	case core.ResultDDL:
		fmt.Println("-- ok")
	}
}

func repl(eng *core.Engine, useAQL, explain bool) {
	fmt.Println("asterix shell — SQL++ statements end with ';' (AQL mode: blank line). Ctrl-D to exit.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "asterix> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := sc.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		complete := strings.HasSuffix(strings.TrimSpace(line), ";")
		if useAQL {
			complete = strings.TrimSpace(line) == "" && strings.TrimSpace(buf.String()) != ""
		}
		if !complete {
			prompt = "      -> "
			continue
		}
		script := buf.String()
		buf.Reset()
		prompt = "asterix> "
		if strings.TrimSpace(script) == ";" || strings.TrimSpace(script) == "" {
			continue
		}
		if err := execute(eng, script, useAQL, explain); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
}
