package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers(" nb=127.0.0.1:1, nc=127.0.0.1:2 ")
	if err != nil || len(peers) != 2 || peers["nb"] != "127.0.0.1:1" || peers["nc"] != "127.0.0.1:2" {
		t.Fatalf("got %v err=%v", peers, err)
	}
	if p, err := parsePeers(""); err != nil || len(p) != 0 {
		t.Fatalf("empty spec: %v err=%v", p, err)
	}
	for _, bad := range []string{"nb", "=x", "nb=", ","} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

// freePorts reserves n distinct ephemeral ports. The listeners close on
// return, so a parallel process could in principle steal one — fine for
// a test that fails loudly if it happens.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	var lns []net.Listener
	ports := make([]int, n)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		ports[i] = ln.Addr().(*net.TCPAddr).Port
	}
	for _, ln := range lns {
		ln.Close()
	}
	return ports
}

type smokeNode struct {
	id       string
	httpAddr string
	cmd      *exec.Cmd
}

func (sn *smokeNode) url(path string) string { return "http://" + sn.httpAddr + path }

func postJSON(t *testing.T, url string, body interface{}, out interface{}) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// distJoinBody is the canonical 3-way distributed join request (1800
// result rows: 6 left matches x 3 right matches x 100 keys).
func distJoinBody(id string, maxAttempts int) map[string]interface{} {
	return map[string]interface{}{
		"maxAttempts": maxAttempts,
		"sample":      1,
		"spec": map[string]interface{}{
			"id": id,
			"ops": []map[string]interface{}{
				{"kind": "gen", "name": "left", "parallelism": 3, "rows": 200, "keyMod": 100},
				{"kind": "gen", "name": "right", "parallelism": 3, "rows": 100, "keyMod": 100},
				{"kind": "hashjoin", "name": "join", "parallelism": 3,
					"leftCols": []int{0}, "rightCols": []int{0}, "rightWidth": 2},
				{"kind": "collect", "name": "out", "pin": "@coordinator"},
			},
			"edges": []map[string]interface{}{
				{"from": 0, "to": 2, "port": 0, "conn": "hash", "hashCols": []int{0}},
				{"from": 1, "to": 2, "port": 1, "conn": "hash", "hashCols": []int{0}},
				{"from": 2, "to": 3, "port": 0, "conn": "merge"},
			},
		},
	}
}

const distJoinWant = 1800

// TestMultiProcessCluster builds the real asterixd binary, boots three
// node processes wired as a cluster, and proves a distributed join
// completes over actual TCP between them. With ASTERIX_NET_MATRIX=1 it
// additionally runs the fault matrix: the join under injected frame
// drops, under injected delay, and after killing a node process.
func TestMultiProcessCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke test skipped in -short")
	}
	matrix := os.Getenv("ASTERIX_NET_MATRIX") == "1"

	bin := filepath.Join(t.TempDir(), "asterixd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build asterixd: %v\n%s", err, out)
	}

	ids := []string{"na", "nb", "nc"}
	ports := freePorts(t, 6) // http x3, data x3
	dataAddr := func(i int) string { return fmt.Sprintf("127.0.0.1:%d", ports[3+i]) }
	nodes := map[string]*smokeNode{}
	for i, id := range ids {
		peerList := ""
		for j, other := range ids {
			if other == id {
				continue
			}
			if peerList != "" {
				peerList += ","
			}
			peerList += fmt.Sprintf("%s=%s", other, dataAddr(j))
		}
		sn := &smokeNode{id: id, httpAddr: fmt.Sprintf("127.0.0.1:%d", ports[i])}
		sn.cmd = exec.Command(bin,
			"-node-id", id,
			"-listen", sn.httpAddr,
			"-data-listen", dataAddr(i),
			"-peers", peerList,
			"-data", filepath.Join(t.TempDir(), id),
			"-hb-interval", "50ms",
			"-enable-fault-injection",
		)
		sn.cmd.Stdout = os.Stderr
		sn.cmd.Stderr = os.Stderr
		if err := sn.cmd.Start(); err != nil {
			t.Fatalf("start %s: %v", id, err)
		}
		nodes[id] = sn
	}
	t.Cleanup(func() {
		for _, sn := range nodes {
			if sn.cmd.Process != nil {
				sn.cmd.Process.Kill()
				sn.cmd.Wait()
			}
		}
	})

	// Wait for every process to serve, then give the mesh two heartbeat
	// rounds to converge its connection dedupe.
	for _, sn := range nodes {
		deadline := time.Now().Add(20 * time.Second)
		for {
			resp, err := http.Get(sn.url("/admin/ping"))
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %s never came up", sn.id)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	time.Sleep(300 * time.Millisecond)

	var resp struct {
		Status      string `json:"status"`
		Errors      []string
		ResultCount int `json:"resultCount"`
		Metrics     struct {
			JobAttempts int      `json:"jobAttempts"`
			DeadNodes   []string `json:"deadNodes"`
		} `json:"metrics"`
	}
	postJSON(t, nodes["na"].url("/query/distributed"), distJoinBody("smoke", 3), &resp)
	if resp.Status != "success" || resp.ResultCount != distJoinWant {
		t.Fatalf("distributed join: %+v", resp)
	}

	// The data plane must show cross-process frames on a worker.
	mresp, err := http.Get(nodes["nb"].url("/admin/stats"))
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]interface{}
	json.NewDecoder(mresp.Body).Decode(&stats)
	mresp.Body.Close()
	if v, ok := stats["net_frames_sent_total"].(float64); !ok || v == 0 {
		t.Fatalf("worker nb shows no frames sent: %v", stats["net_frames_sent_total"])
	}

	if !matrix {
		return
	}

	// --- net-matrix: distributed join under injected frame drops. ---
	postJSON(t, nodes["nb"].url("/admin/fault"),
		map[string]string{"spec": "net.drop:error:after=2:times=3:tag=nb"}, nil)
	resp.Metrics.JobAttempts = 0
	postJSON(t, nodes["na"].url("/query/distributed"), distJoinBody("smoke-drop", 6), &resp)
	if resp.Status != "success" || resp.ResultCount != distJoinWant {
		t.Fatalf("join under net.drop: %+v", resp)
	}
	if resp.Metrics.JobAttempts < 2 {
		t.Fatalf("net.drop did not force a retry: %+v", resp.Metrics)
	}
	postJSON(t, nodes["nb"].url("/admin/fault"), map[string]string{"spec": ""}, nil)

	// --- net-matrix: distributed join under injected link delay. ---
	postJSON(t, nodes["nb"].url("/admin/fault"),
		map[string]string{"spec": "net.delay:delay=20ms:times=5:tag=nb"}, nil)
	postJSON(t, nodes["na"].url("/query/distributed"), distJoinBody("smoke-delay", 6), &resp)
	if resp.Status != "success" || resp.ResultCount != distJoinWant {
		t.Fatalf("join under net.delay: %+v", resp)
	}
	postJSON(t, nodes["nb"].url("/admin/fault"), map[string]string{"spec": ""}, nil)

	// --- net-matrix: kill a node process, survivors answer. ---
	nodes["nc"].cmd.Process.Kill()
	nodes["nc"].cmd.Wait()
	// Heartbeat detection: 50ms interval, 8x timeout, plus slack.
	time.Sleep(1200 * time.Millisecond)
	var cl struct {
		Members []struct {
			ID    string `json:"id"`
			Alive bool   `json:"alive"`
		} `json:"members"`
	}
	cresp, err := http.Get(nodes["na"].url("/admin/cluster"))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(cresp.Body).Decode(&cl)
	cresp.Body.Close()
	for _, m := range cl.Members {
		if m.ID == "nc" && m.Alive {
			t.Fatalf("nc still alive in na's view after kill: %+v", cl)
		}
	}
	postJSON(t, nodes["na"].url("/query/distributed"), distJoinBody("smoke-dead", 6), &resp)
	if resp.Status != "success" || resp.ResultCount != distJoinWant {
		t.Fatalf("join after node kill: %+v", resp)
	}
}
