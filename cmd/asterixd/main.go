// Command asterixd runs the HTTP query service: an AsterixDB-style
// endpoint (POST /query/service, {"statement": "..."}) over an embedded
// engine instance.
//
// Usage:
//
//	asterixd -data /var/lib/asterix -listen :19002 -partitions 4
package main

import (
	"flag"
	"log"
	"net/http"

	"asterix/internal/core"
	"asterix/internal/server"
)

func main() {
	var (
		dataDir    = flag.String("data", "./asterix-data", "data directory")
		listen     = flag.String("listen", ":19002", "listen address")
		partitions = flag.Int("partitions", 2, "storage partitions per dataset")
		nodes      = flag.Int("nodes", 0, "dataflow node controllers (0 = partitions)")
	)
	flag.Parse()

	eng, err := core.Open(core.Config{
		DataDir:    *dataDir,
		Partitions: *partitions,
		Nodes:      *nodes,
	})
	if err != nil {
		log.Fatalf("asterixd: %v", err)
	}
	defer eng.Close()

	log.Printf("asterixd: query service listening on %s (data: %s, partitions: %d)",
		*listen, *dataDir, *partitions)
	if err := http.ListenAndServe(*listen, server.Handler(eng)); err != nil {
		log.Fatalf("asterixd: %v", err)
	}
}
