// Command asterixd runs the HTTP query service: an AsterixDB-style
// endpoint (POST /query/service, {"statement": "..."}) over an embedded
// engine instance, with observability endpoints at /admin/metrics
// (Prometheus), /admin/stats (JSON), and /debug/pprof/.
//
// Usage:
//
//	asterixd -data /var/lib/asterix -listen :19002 -partitions 4
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"asterix/internal/core"
	"asterix/internal/server"
)

func main() {
	var (
		dataDir    = flag.String("data", "./asterix-data", "data directory")
		listen     = flag.String("listen", ":19002", "listen address")
		partitions = flag.Int("partitions", 2, "storage partitions per dataset")
		nodes      = flag.Int("nodes", 0, "dataflow node controllers (0 = partitions)")
		slowQuery  = flag.Duration("slow-query", 500*time.Millisecond,
			"log statements slower than this (negative disables)")
	)
	flag.Parse()

	eng, err := core.Open(core.Config{
		DataDir:    *dataDir,
		Partitions: *partitions,
		Nodes:      *nodes,
	})
	if err != nil {
		log.Fatalf("asterixd: %v", err)
	}
	defer eng.Close()

	h := server.NewHandler(eng, server.Options{SlowQueryThreshold: *slowQuery})
	log.Printf("asterixd: query service listening on %s (data: %s, partitions: %d; metrics at /admin/metrics)",
		*listen, *dataDir, *partitions)
	if err := http.ListenAndServe(*listen, h); err != nil {
		log.Fatalf("asterixd: %v", err)
	}
}
