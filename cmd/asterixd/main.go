// Command asterixd runs the HTTP query service: an AsterixDB-style
// endpoint (POST /query/service, {"statement": "..."}) over an embedded
// engine instance, with observability endpoints at /admin/metrics
// (Prometheus), /admin/stats (JSON), and /debug/pprof/.
//
// Usage:
//
//	asterixd -data /var/lib/asterix -listen :19002 -partitions 4 -total-memory 256MiB
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"asterix/internal/core"
	"asterix/internal/server"
)

// parseBytes parses a byte-size string: a plain integer (bytes) or an
// integer with a KB/KiB/MB/MiB/GB/GiB suffix (decimal and binary suffixes
// are treated alike, binary).
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	upper := strings.ToUpper(s)
	for _, suf := range []struct {
		name string
		mult int64
	}{
		{"KIB", 1 << 10}, {"KB", 1 << 10},
		{"MIB", 1 << 20}, {"MB", 1 << 20},
		{"GIB", 1 << 30}, {"GB", 1 << 30},
	} {
		if strings.HasSuffix(upper, suf.name) {
			mult = suf.mult
			s = strings.TrimSpace(s[:len(s)-len(suf.name)])
			break
		}
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid byte size %q", s)
	}
	return n * mult, nil
}

func main() {
	var (
		dataDir    = flag.String("data", "./asterix-data", "data directory")
		listen     = flag.String("listen", ":19002", "listen address")
		partitions = flag.Int("partitions", 2, "storage partitions per dataset")
		nodes      = flag.Int("nodes", 0, "dataflow node controllers (0 = partitions)")
		frameSize  = flag.Int("frame-size", 0, "dataflow frame size in tuples (0 = default 256)")
		bufPages   = flag.Int("buffer-pages", 0, "buffer cache size in pages (0 = derived)")
		totalMem   = flag.String("total-memory", "",
			"instance-wide memory budget, e.g. 256MiB; split across buffer cache, LSM memtables, and working memory")
		slowQuery = flag.Duration("slow-query", 500*time.Millisecond,
			"log statements slower than this (negative disables)")
		nodeID     = flag.String("node-id", "", "cluster node id; empty runs single-process")
		dataListen = flag.String("data-listen", "127.0.0.1:19010", "frame-transport listen address (cluster mode)")
		peers      = flag.String("peers", "", "remote members as id=host:port,... (cluster mode)")
		hbInterval = flag.Duration("hb-interval", 250*time.Millisecond, "cluster heartbeat interval")
		faultAPI   = flag.Bool("enable-fault-injection", false,
			"mount POST /admin/fault (test harnesses only; arms process-wide fault points)")
	)
	flag.Parse()

	total, err := parseBytes(*totalMem)
	if err != nil {
		log.Fatalf("asterixd: -total-memory: %v", err)
	}

	eng, err := core.Open(core.Config{
		DataDir:     *dataDir,
		Partitions:  *partitions,
		Nodes:       *nodes,
		FrameSize:   *frameSize,
		BufferPages: *bufPages,
		TotalMemory: total,
	})
	if err != nil {
		log.Fatalf("asterixd: %v", err)
	}
	defer eng.Close()

	h := server.NewHandler(eng, server.Options{SlowQueryThreshold: *slowQuery})

	// Cluster mode: join the peer mesh and mount the distributed
	// endpoints in front of the single-process query service.
	if *nodeID != "" {
		cs, err := startCluster(*nodeID, *dataListen, *peers, filepath.Join(*dataDir, "cluster"),
			*hbInterval, eng.Cluster().Gov, eng.Metrics(), *faultAPI)
		if err != nil {
			log.Fatalf("asterixd: cluster: %v", err)
		}
		defer cs.close()
		mux := http.NewServeMux()
		cs.routes(mux)
		mux.Handle("/", h)
		h = mux
		log.Printf("asterixd: node %s joined cluster (frame transport on %s, %d members)",
			*nodeID, cs.peer.Addr(), len(cs.cluster.Nodes))
	}

	srv := server.NewHTTPServer(*listen, h)
	log.Printf("asterixd: query service listening on %s (data: %s, partitions: %d; metrics at /admin/metrics)",
		*listen, *dataDir, *partitions)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("asterixd: %v", err)
	}
}
