package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"asterix/internal/adm"
	"asterix/internal/dist"
	"asterix/internal/fault"
	"asterix/internal/hyracks"
	"asterix/internal/mem"
	anet "asterix/internal/net"
	"asterix/internal/obs"
)

// clusterService is the node process's distributed face: the anet peer
// mesh, the shared-member cluster view, and the dist control plane, plus
// the HTTP endpoints that expose them (/admin/cluster,
// /query/distributed, and — when explicitly enabled — /admin/fault).
type clusterService struct {
	self       string
	peer       *anet.Peer
	cluster    *hyracks.Cluster
	node       *dist.Node
	reg        *obs.Registry
	allowFault bool
}

// parsePeers parses "id=host:port,id2=host:port" into a map.
func parsePeers(s string) (map[string]string, error) {
	peers := map[string]string{}
	if strings.TrimSpace(s) == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad peer entry %q (want id=host:port)", part)
		}
		peers[id] = addr
	}
	return peers, nil
}

// startCluster boots the data-plane peer and control plane for a node
// of a multi-process cluster. The engine's governor arbitrates the
// distributed path's memory too: jobs admit against it and the peer
// charges its receive-window buffers to it.
func startCluster(self, dataListen, peerSpec, dataDir string, hbInterval time.Duration,
	gov *mem.Governor, reg *obs.Registry, allowFault bool) (*clusterService, error) {
	peers, err := parsePeers(peerSpec)
	if err != nil {
		return nil, err
	}
	if _, dup := peers[self]; dup {
		return nil, fmt.Errorf("-peers must list only REMOTE members, found self (%s)", self)
	}
	members := []string{self}
	for id := range peers {
		members = append(members, id)
	}
	sort.Strings(members)
	cluster, err := hyracks.NewNamedCluster(members, dataDir)
	if err != nil {
		return nil, err
	}
	cluster.Gov = gov
	node := dist.NewNode(cluster)
	peer, err := anet.NewPeer(anet.Options{
		ID:                self,
		ListenAddr:        dataListen,
		Peers:             peers,
		Gov:               gov,
		Metrics:           reg,
		FramePool:         cluster.FramePool(),
		OnPeerDown:        node.OnPeerDown,
		OnPeerUp:          node.OnPeerUp,
		OnControl:         node.HandleControl,
		HeartbeatInterval: hbInterval,
	})
	if err != nil {
		return nil, err
	}
	node.Bind(peer)
	return &clusterService{
		self: self, peer: peer, cluster: cluster, node: node,
		reg: reg, allowFault: allowFault,
	}, nil
}

func (cs *clusterService) close() {
	cs.node.Close()
	cs.peer.Close()
}

// routes mounts the cluster endpoints on the mux.
func (cs *clusterService) routes(mux *http.ServeMux) {
	mux.HandleFunc("/admin/cluster", cs.serveCluster)
	mux.HandleFunc("/query/distributed", cs.serveDistributed)
	if cs.allowFault {
		mux.HandleFunc("/admin/fault", cs.serveFault)
	}
}

func (cs *clusterService) serveCluster(w http.ResponseWriter, r *http.Request) {
	type member struct {
		ID    string `json:"id"`
		Alive bool   `json:"alive"`
		Self  bool   `json:"self,omitempty"`
	}
	out := struct {
		Self     string             `json:"self"`
		DataAddr string             `json:"dataAddr"`
		Members  []member           `json:"members"`
		Retries  hyracks.RetryStats `json:"retries"`
	}{Self: cs.self, DataAddr: cs.peer.Addr(), Retries: cs.cluster.RetryStats()}
	for _, n := range cs.cluster.Nodes {
		out.Members = append(out.Members, member{ID: n.ID, Alive: !n.Dead(), Self: n.ID == cs.self})
	}
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore err-discard best-effort write to the response; a failure means the client is gone
	json.NewEncoder(w).Encode(&out)
}

// distRequest is the /query/distributed body: a dist job spec plus run
// bounds.
type distRequest struct {
	Spec        *dist.Spec `json:"spec"`
	MaxAttempts int        `json:"maxAttempts,omitempty"`
	// Sample caps how many result rows are returned inline (default 100;
	// resultCount is always exact).
	Sample int `json:"sample,omitempty"`
}

type distResponse struct {
	Status      string            `json:"status"`
	Errors      []string          `json:"errors,omitempty"`
	Retriable   bool              `json:"retriable,omitempty"`
	ResultCount int               `json:"resultCount"`
	Results     []json.RawMessage `json:"results,omitempty"`
	Metrics     struct {
		ElapsedTime string   `json:"elapsedTime"`
		JobAttempts int      `json:"jobAttempts,omitempty"`
		DeadNodes   []string `json:"deadNodes,omitempty"`
	} `json:"metrics"`
}

func (cs *clusterService) serveDistributed(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, `{"status":"fatal","errors":["POST required"]}`, http.StatusMethodNotAllowed)
		return
	}
	var req distRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Spec == nil {
		http.Error(w, `{"status":"fatal","errors":["body must be {\"spec\": {...}}"]}`, http.StatusBadRequest)
		return
	}
	start := time.Now()
	rows, rep, err := cs.node.Run(r.Context(), req.Spec, hyracks.RetryPolicy{MaxAttempts: req.MaxAttempts})
	var resp distResponse
	resp.Status = "success"
	resp.Metrics.ElapsedTime = time.Since(start).String()
	resp.Metrics.DeadNodes = rep.DeadNodes
	if rep.Attempts > 1 {
		resp.Metrics.JobAttempts = rep.Attempts
	}
	if err != nil {
		resp.Status = "fatal"
		resp.Errors = append(resp.Errors, err.Error())
		_, resp.Retriable = hyracks.Retriable(err)
		w.Header().Set("Content-Type", "application/json")
		if resp.Retriable {
			w.WriteHeader(http.StatusServiceUnavailable)
		} else {
			w.WriteHeader(http.StatusInternalServerError)
		}
		//lint:ignore err-discard best-effort write to the response; a failure means the client is gone
		json.NewEncoder(w).Encode(&resp)
		return
	}
	resp.ResultCount = len(rows)
	sample := req.Sample
	if sample <= 0 {
		sample = 100
	}
	for i, t := range rows {
		if i >= sample {
			break
		}
		cols := make([]json.RawMessage, len(t))
		for c, v := range t {
			cols[c] = json.RawMessage(adm.ToJSON(v))
		}
		//lint:ignore err-discard cols holds adm.ToJSON output, already valid JSON; Marshal cannot fail
		b, _ := json.Marshal(cols)
		resp.Results = append(resp.Results, b)
	}
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore err-discard best-effort write to the response; a failure means the client is gone
	json.NewEncoder(w).Encode(&resp)
}

// serveFault arms or disarms the process-wide fault registry. Mounted
// only behind -enable-fault-injection: it exists for the net-matrix
// harness, never for production.
func (cs *clusterService) serveFault(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, `{"status":"fatal","errors":["POST required"]}`, http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Spec string `json:"spec"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, `{"status":"fatal","errors":["body must be {\"spec\": \"point:mode:...\"}"]}`, http.StatusBadRequest)
		return
	}
	if req.Spec == "" {
		//lint:ignore fault-gate the annotated harness path: this handler only mounts behind -enable-fault-injection
		fault.Disarm()
		//lint:ignore fault-gate the annotated harness path: this handler only mounts behind -enable-fault-injection
	} else if err := fault.Arm(req.Spec); err != nil {
		http.Error(w, fmt.Sprintf(`{"status":"fatal","errors":[%q]}`, err.Error()), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","armed":%q}`+"\n", req.Spec)
}
