// Command asterixbench regenerates the experiment suite of DESIGN.md /
// EXPERIMENTS.md: one table per empirical claim of the paper (E1–E10).
//
// Usage:
//
//	asterixbench                 # run all experiments at full scale
//	asterixbench -scale small    # CI scale
//	asterixbench -only E2,E3     # a subset
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"asterix/internal/experiments"
)

func main() {
	var (
		scaleName = flag.String("scale", "full", "workload scale: full or small")
		only      = flag.String("only", "", "comma-separated experiment ids (default all)")
		workDir   = flag.String("work", "", "scratch directory (default: a temp dir)")
	)
	flag.Parse()

	scale := experiments.Full
	if *scaleName == "small" {
		scale = experiments.Small
	}
	dir := *workDir
	if dir == "" {
		d, err := os.MkdirTemp("", "asterixbench-*")
		if err != nil {
			log.Fatal(err)
		}
		//lint:ignore err-discard best-effort cleanup of the demo temp dir
		defer os.RemoveAll(d)
		dir = d
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	failed := 0
	for _, exp := range experiments.All() {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		rep, err := exp.Run(scale, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", exp.ID, err)
			failed++
			continue
		}
		rep.Print(os.Stdout)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
