// Command asterixbench regenerates the experiment suite of DESIGN.md /
// EXPERIMENTS.md: one table per empirical claim of the paper (E1–E13).
//
// Every run emits a structured BENCH_<n>.json artifact (schema
// asterixbench/v1) alongside the prose tables — the JSON is the canonical
// record; the prose is a render of it. Artifacts can be diffed with
// tolerance bands to gate regressions.
//
// Usage:
//
//	asterixbench                          # run all experiments at full scale
//	asterixbench -scale small             # CI scale
//	asterixbench -only E2,E3              # a subset
//	asterixbench -out BENCH_ci.json       # explicit artifact path
//	asterixbench -compare BENCH_1.json    # run, then gate against a baseline
//	asterixbench -compare BENCH_1.json -in BENCH_2.json   # pure file diff, no run
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strings"
	"time"

	"asterix/internal/benchfmt"
	"asterix/internal/experiments"
)

func main() {
	var (
		scaleName = flag.String("scale", "full", "workload scale: full or small")
		only      = flag.String("only", "", "comma-separated experiment ids (default all)")
		workDir   = flag.String("work", "", "scratch directory (default: a temp dir)")
		outPath   = flag.String("out", "", "artifact path (default: next free BENCH_<n>.json)")
		inPath    = flag.String("in", "", "compare this artifact instead of running (requires -compare)")
		comparePV = flag.String("compare", "", "baseline BENCH_*.json to diff against; regressions exit non-zero")
		tolerance = flag.Float64("tolerance", 0, "fractional tolerance band for -compare (default 0.5)")
		warnOnly  = flag.Bool("warn-only", false, "report -compare regressions but exit zero")
		hardUnits = flag.String("hard-units", "",
			"comma-separated measurement units (e.g. allocs/op,allocs/row) whose regressions fail the gate even under -warn-only")
	)
	flag.Parse()

	if *inPath != "" {
		// Pure comparator mode: diff two artifacts already on disk.
		if *comparePV == "" {
			log.Fatal("asterixbench: -in requires -compare")
		}
		cur, err := benchfmt.ReadFile(*inPath)
		if err != nil {
			log.Fatal(err)
		}
		gate(*comparePV, cur, *tolerance, *warnOnly, splitUnits(*hardUnits))
		return
	}

	scale := experiments.Full
	if *scaleName == "small" {
		scale = experiments.Small
	}
	dir := *workDir
	if dir == "" {
		d, err := os.MkdirTemp("", "asterixbench-*")
		if err != nil {
			log.Fatal(err)
		}
		//lint:ignore err-discard best-effort cleanup of the demo temp dir
		defer os.RemoveAll(d)
		dir = d
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	artifact := &benchfmt.Artifact{Env: benchfmt.NewEnvironment(*scaleName, gitCommit())}
	artifact.Env.Timestamp = time.Now().UTC().Format(time.RFC3339)
	fmt.Printf("# asterixbench  scale=%s  %s %s/%s  cpus=%d gomaxprocs=%d  commit=%s\n\n",
		artifact.Env.Scale, artifact.Env.GoVersion, artifact.Env.GOOS, artifact.Env.GOARCH,
		artifact.Env.NumCPU, artifact.Env.GOMAXPROCS, artifact.Env.Commit)

	failed := 0
	for _, exp := range experiments.All() {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		rep, bx, err := experiments.RunOne(exp, scale, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", exp.ID, err)
			failed++
			continue
		}
		rep.Print(os.Stdout)
		artifact.Experiments = append(artifact.Experiments, bx)
	}

	path := *outPath
	if path == "" {
		path = nextBenchPath()
	}
	if err := artifact.WriteFile(path); err != nil {
		log.Fatalf("asterixbench: write artifact: %v", err)
	}
	// Diagnostics to stderr so `asterixbench > report.txt` captures prose only.
	fmt.Fprintf(os.Stderr, "wrote %s (%d experiments)\n", path, len(artifact.Experiments))

	if failed > 0 {
		os.Exit(1)
	}
	if *comparePV != "" {
		gate(*comparePV, artifact, *tolerance, *warnOnly, splitUnits(*hardUnits))
	}
}

// splitUnits parses the -hard-units flag value.
func splitUnits(s string) []string {
	var units []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			units = append(units, u)
		}
	}
	return units
}

// gate diffs cur against the baseline at basePath and exits non-zero on
// regression (unless warn-only). Hard-unit regressions — deterministic
// counters like allocs/op — fail the gate even under warn-only.
func gate(basePath string, cur *benchfmt.Artifact, tolerance float64, warnOnly bool, hardUnits []string) {
	base, err := benchfmt.ReadFile(basePath)
	if err != nil {
		log.Fatal(err)
	}
	rep := benchfmt.Compare(base, cur, benchfmt.CompareOptions{Tolerance: tolerance, HardUnits: hardUnits})
	fmt.Printf("\n-- compare vs %s (env: %s/%d-cpu -> %s/%d-cpu)\n",
		basePath, base.Env.GOOS, base.Env.NumCPU, cur.Env.GOOS, cur.Env.NumCPU)
	rep.Format(os.Stdout)
	if rep.HardFail() {
		fmt.Fprintln(os.Stderr, "asterixbench: hard-unit regression (allocation counters are a hard gate)")
		os.Exit(2)
	}
	if !rep.OK() && !warnOnly {
		os.Exit(2)
	}
}

// nextBenchPath returns the first free BENCH_<n>.json in the working
// directory, so successive runs accumulate a numbered perf trajectory.
func nextBenchPath() string {
	for n := 1; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}

// gitCommit resolves the repo HEAD, best-effort.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
