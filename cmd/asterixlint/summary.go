package main

// Interprocedural engine: per-function summaries over the module call
// graph. Each function gets a Summary of its direct effects — allocation
// sites, blocking sites (with wait-attribution coverage), outgoing call
// edges, panic reachability, and what it does with resource-typed
// parameters — and the resource facts are resolved bottom-up over the
// call graph's SCCs. The hot-alloc and wait-attrib rules then walk
// summaries from their registered roots; the resource-leak rule consults
// resolved parameter actions instead of killing facts at every call.
//
// Summaries are position-based (file:line:col relative to the module
// root), not AST-based, which is what makes them cacheable: a cache hit
// keyed on the Go file hash set restores the whole table and skips call
// graph construction and extraction. See docs/STATIC_ANALYSIS.md.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"asterix/cmd/asterixlint/cfg"
)

// FuncRef names a function or method in config registries (hot roots,
// wait roots, attribution sinks).
type FuncRef struct {
	Pkg, Recv, Func string
}

// ID renders the reference in call-graph identifier form.
func (r FuncRef) ID() string {
	if r.Recv != "" {
		return r.Pkg + ".(" + r.Recv + ")." + r.Func
	}
	return r.Pkg + "." + r.Func
}

// SitePos is a serializable source position, file relative to the
// module root.
type SitePos struct {
	File string `json:"f"`
	Line int    `json:"l"`
	Col  int    `json:"c"`
}

// AllocSite is one direct allocation in a function body.
type AllocSite struct {
	P    SitePos `json:"p"`
	What string  `json:"w"`
}

// BlockSite is one direct potentially-blocking operation. Attributed
// means the site is covered by wait attribution: an AddWait call is
// reachable strictly ahead along forward (non-back) edges — the
// `t0 := time.Now(); <block>; tc.AddWait(kind, time.Since(t0))`
// pattern — or an AddWait-carrying defer is active at the site.
type BlockSite struct {
	P          SitePos `json:"p"`
	What       string  `json:"w"`
	Attributed bool    `json:"a,omitempty"`
}

// EdgeFact is one outgoing call edge of the summary.
type EdgeFact struct {
	P          SitePos  `json:"p"`
	Kind       string   `json:"k"` // static|method|interface|dynamic|external|ref
	Callees    []string `json:"c,omitempty"`
	Ext        string   `json:"x,omitempty"`
	Go         bool     `json:"g,omitempty"`
	Attributed bool     `json:"a,omitempty"`
}

// Param actions, ordered: resolution takes the strongest evidence.
const (
	// ParamNone: the function neither releases, stores, returns, nor
	// forwards the resource to anyone who does — passing a live resource
	// here leaves the caller the owner (and a leak candidate).
	ParamNone = "none"
	// ParamKept: ownership transfers (stored, returned, forwarded to an
	// unknown callee). The caller's obligation ends.
	ParamKept = "kept"
	// ParamReleased: a release is reachable from the function (possibly
	// through further calls).
	ParamReleased = "released"
)

// ParamFact records what a function does with one resource-typed
// parameter. Action is the direct (intraprocedural) evidence; Resolved
// is the fixpoint over forwarded flows.
type ParamFact struct {
	Index    int    `json:"i"`
	Type     string `json:"t"` // "pkg/path.TypeName"
	Action   string `json:"a"`
	Resolved string `json:"-"`
}

// ParamFlow records a resource parameter forwarded verbatim to a module
// callee's parameter.
type ParamFlow struct {
	Param       int    `json:"i"`
	Callee      string `json:"c"`
	CalleeParam int    `json:"j"`
}

// PooledResult records that a function hands the caller a pool-drawn
// container at result index Index: the caller owns the Put. Extracted
// from return statements returning, verbatim, a variable assigned from
// a registered pool Get.
type PooledResult struct {
	Index int    `json:"i"`
	Desc  string `json:"d,omitempty"`
}

// Summary is one function's interprocedural fact sheet.
type Summary struct {
	ID     string         `json:"id"`
	Allocs []AllocSite    `json:"allocs,omitempty"`
	Blocks []BlockSite    `json:"blocks,omitempty"`
	Edges  []EdgeFact     `json:"edges,omitempty"`
	Panics bool           `json:"panics,omitempty"`
	Params []ParamFact    `json:"params,omitempty"`
	Flows  []ParamFlow    `json:"flows,omitempty"`
	Pooled []PooledResult `json:"pooled,omitempty"`
}

// Interp is the interprocedural state handed to rules' Interp hooks.
type Interp struct {
	c       *Config
	fset    *token.FileSet
	modRoot string
	pkgs    []*Package
	sums    map[string]*Summary
	ids     []string // sorted
	// FromCache reports whether the summary table was restored rather
	// than computed (the -stats line surfaces it).
	FromCache bool
	// Suppressed is set by the Runner to its suppression table: it
	// reports whether a rule is ignored at a position. Interprocedural
	// walks treat a suppressed call edge as a cold barrier — a reasoned
	// //lint:ignore on the call line stops the descent into the callee,
	// which is how a whole cold subtree (fault probes, eviction) is
	// excluded without suppressing every deep site in it.
	Suppressed func(rule string, pos token.Position) bool
}

// edgeSuppressed reports whether a call edge is a suppression barrier.
func (ip *Interp) edgeSuppressed(rule string, p SitePos) bool {
	return ip.Suppressed != nil && ip.Suppressed(rule, ip.Position(p))
}

// Pkgs returns the packages under analysis.
func (ip *Interp) Pkgs() []*Package { return ip.pkgs }

// Summary returns the summary for a call-graph ID, nil if unknown.
func (ip *Interp) Summary(id string) *Summary { return ip.sums[id] }

// SummaryFor returns the summary of a resolved function object.
func (ip *Interp) SummaryFor(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	return ip.sums[cfg.FuncID(fn)]
}

// Position converts a summary position back to a reportable one.
func (ip *Interp) Position(p SitePos) token.Position {
	f := p.File
	if ip.modRoot != "" && !filepath.IsAbs(f) {
		f = filepath.Join(ip.modRoot, filepath.FromSlash(f))
	}
	return token.Position{Filename: f, Line: p.Line, Column: p.Col}
}

// site converts a token.Pos to a summary position.
func (ip *Interp) site(pos token.Pos) SitePos {
	p := ip.fset.Position(pos)
	f := p.Filename
	if ip.modRoot != "" {
		if rel, err := filepath.Rel(ip.modRoot, f); err == nil && !strings.HasPrefix(rel, "..") {
			f = filepath.ToSlash(rel)
		}
	}
	return SitePos{File: f, Line: p.Line, Col: p.Column}
}

// resourceTypes maps "pkg/path.TypeName" → Desc for the registered
// resource result types.
func resourceTypes(c *Config) map[string]string {
	m := map[string]string{}
	for i := range c.Resources {
		spec := &c.Resources[i]
		if spec.Type != "" {
			m[spec.Pkg+"."+spec.Type] = spec.Desc
		}
	}
	return m
}

// extractionConfig returns c extended with synthetic resource specs for
// the registered pool element types, so parameter classification
// (kept/released) covers functions handling pooled containers of a
// named type. The synthetic specs declare no acquire function (an empty
// Func matches no call, so resource-leak tracking never opens a site
// for them) and release through the pool's Put.
func extractionConfig(c *Config) *Config {
	n := 0
	for i := range c.Pools {
		if c.Pools[i].ElemType != "" {
			n++
		}
	}
	if n == 0 {
		return c
	}
	ec := *c
	ec.Resources = append([]ResourceSpec(nil), c.Resources...)
	for i := range c.Pools {
		ps := &c.Pools[i]
		if ps.ElemType == "" {
			continue
		}
		ec.Resources = append(ec.Resources, ResourceSpec{
			Pkg:      ps.ElemPkg,
			Type:     ps.ElemType,
			Desc:     ps.Desc,
			Releases: []ReleaseSpec{{Pkg: ps.Pkg, Recv: ps.Recv, Func: ps.Put, Arg: 0}},
		})
	}
	return &ec
}

// buildInterp computes (or restores) the summary table for the loaded
// package set.
func buildInterp(c *Config, fset *token.FileSet, modRoot, cacheDir string, pkgs []*Package) *Interp {
	ip := &Interp{c: c, fset: fset, modRoot: modRoot, pkgs: pkgs, sums: map[string]*Summary{}}
	var key string
	if cacheDir != "" {
		key = cacheKey(c, modRoot, pkgs)
		if loadSummaryCache(filepath.Join(cacheDir, key+".json"), ip) {
			ip.FromCache = true
			ip.resolveParams()
			return ip
		}
	}
	var gps []*cfg.GraphPackage
	pkgOf := map[*cfg.GraphPackage]*Package{}
	for _, p := range pkgs {
		gp := &cfg.GraphPackage{Path: p.Path, Files: p.Files, Pkg: p.Pkg, Info: p.Info}
		gps = append(gps, gp)
		pkgOf[gp] = p
	}
	graph := cfg.BuildCallGraph(gps)
	ec := extractionConfig(c)
	restypes := resourceTypes(ec)
	for _, id := range graph.IDs {
		f := graph.Funcs[id]
		ip.sums[id] = newExtractor(ip, pkgOf[f.Pkg], restypes, ec).extract(f)
	}
	for id := range ip.sums {
		ip.ids = append(ip.ids, id)
	}
	sort.Strings(ip.ids)
	ip.resolveParams()
	if cacheDir != "" {
		saveSummaryCache(cacheDir, key, ip)
	}
	return ip
}

// resolveParams runs the bottom-up fixpoint over parameter actions:
// direct evidence joins with the resolved actions of every callee a
// parameter is forwarded to, iterating to a fixpoint so cycles (mutual
// recursion) converge. The lattice is none < kept < released and the
// join takes the maximum, so resolution only ever strengthens.
func (ip *Interp) resolveParams() {
	rank := map[string]int{ParamNone: 0, ParamKept: 1, ParamReleased: 2}
	for _, s := range ip.sums {
		for i := range s.Params {
			s.Params[i].Resolved = s.Params[i].Action
		}
	}
	for changed := true; changed; {
		changed = false
		for _, id := range ip.ids {
			s := ip.sums[id]
			for i := range s.Params {
				p := &s.Params[i]
				best := p.Resolved
				for _, fl := range s.Flows {
					if fl.Param != p.Index {
						continue
					}
					callee := ip.sums[fl.Callee]
					if callee == nil {
						// Forwarded to a function outside the analyzed
						// set: assume ownership transfers (old blanket
						// behavior).
						if rank[ParamKept] > rank[best] {
							best = ParamKept
						}
						continue
					}
					found := false
					for j := range callee.Params {
						cp := &callee.Params[j]
						if cp.Index == fl.CalleeParam && cp.Type == p.Type {
							found = true
							if rank[cp.Resolved] > rank[best] {
								best = cp.Resolved
							}
						}
					}
					if !found && rank[ParamKept] > rank[best] {
						// The callee's parameter is not resource-tracked
						// (interface-typed, say): assume transfer.
						best = ParamKept
					}
				}
				if best != p.Resolved {
					p.Resolved = best
					changed = true
				}
			}
		}
	}
}

// ParamResolved returns the resolved action of calleeID's parameter
// index for the given resource type, or "" when the callee or the
// parameter is unknown to the engine.
func (ip *Interp) ParamResolved(calleeID string, index int, resType string) string {
	s := ip.sums[calleeID]
	if s == nil {
		return ""
	}
	for i := range s.Params {
		if s.Params[i].Index == index && s.Params[i].Type == resType {
			return s.Params[i].Resolved
		}
	}
	return ""
}

// --- extraction ---

// unit is one function-like body: the declaration itself or a folded
// (non-go-launched) literal.
type unit struct {
	body   *ast.BlockStmt
	lit    *ast.FuncLit // nil for the declaration body
	parent *unit

	g         *cfg.Graph
	nodeOf    nodeIndex
	coverAll  map[int]bool // block index → every node covered
	coverPre  map[int]int  // block index → nodes with idx < v covered (AddWait ahead)
	coverPost map[int]int  // block index → nodes with idx >= v covered (defer active)
}

// nodeIndex locates the (block, node) containing a position.
type nodeIndex []nodeSpan

type nodeSpan struct {
	from, to token.Pos
	block    int
	idx      int
}

func (ni nodeIndex) find(p token.Pos) (int, int, bool) {
	best := -1
	for i, s := range ni {
		if s.from <= p && p < s.to {
			// Innermost (smallest) containing span wins; spans can nest
			// when a branch condition is re-listed with its statement.
			if best == -1 || (ni[best].to-ni[best].from) > (s.to-s.from) {
				best = i
			}
		}
	}
	if best == -1 {
		return 0, 0, false
	}
	return ni[best].block, ni[best].idx, true
}

// attributedAt reports whether pos (inside u) is covered by wait
// attribution, folding through enclosing units at the literal's
// definition position.
func (u *unit) attributedAt(pos token.Pos) bool {
	if b, i, ok := u.nodeOf.find(pos); ok {
		if u.coverAll[b] {
			return true
		}
		if v, ok := u.coverPre[b]; ok && i < v {
			return true
		}
		if v, ok := u.coverPost[b]; ok && i >= v {
			return true
		}
	}
	if u.lit != nil && u.parent != nil {
		return u.parent.attributedAt(u.lit.Pos())
	}
	return false
}

type extractor struct {
	ip       *Interp
	p        *Package
	restypes map[string]string
	// ec is the extraction config: the run config extended with the
	// synthetic pool-element resource specs (see extractionConfig).
	ec *Config

	units []*unit
	// panicSpans are panic-argument source ranges: calls inside them are
	// error-path edges, exempt from hot-path reporting just like the
	// allocations there.
	panicSpans [][2]token.Pos

	sum *Summary
}

func (x *extractor) inPanicArg(pos token.Pos) bool {
	for _, sp := range x.panicSpans {
		if sp[0] <= pos && pos < sp[1] {
			return true
		}
	}
	return false
}

func newExtractor(ip *Interp, p *Package, restypes map[string]string, ec *Config) *extractor {
	return &extractor{ip: ip, p: p, restypes: restypes, ec: ec}
}

// unitAt returns the innermost unit whose body contains pos (go-launched
// literal interiors have no unit).
func (x *extractor) unitAt(pos token.Pos) *unit {
	var best *unit
	for _, u := range x.units {
		if u.body.Pos() <= pos && pos < u.body.End() {
			if best == nil || (u.body.End()-u.body.Pos()) < (best.body.End()-best.body.Pos()) {
				best = u
			}
		}
	}
	return best
}

func (x *extractor) extract(f *cfg.CGFunc) *Summary {
	x.sum = &Summary{ID: f.ID}
	x.collectUnits(f.Decl.Body, nil, nil)
	for _, u := range x.units {
		x.scanUnit(u)
	}
	x.edges(f)
	x.params(f)
	x.pooled(f)
	return x.sum
}

// pooled records the function's pool-producing results: a return
// statement in the declaration body returning, verbatim, a variable
// assigned from a registered pool Get (function literals are excluded —
// their returns are not this function's). Naked returns of named
// results are not matched; the repo's producers return explicitly.
func (x *extractor) pooled(f *cfg.CGFunc) {
	if len(x.ec.Pools) == 0 {
		return
	}
	info := x.p.Info
	fromGet := map[types.Object]*PoolSpec{}
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		ps := poolGetSpec(x.ec, info, call)
		if ps == nil {
			return true
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj != nil {
			fromGet[obj] = ps
		}
		return true
	})
	if len(fromGet) == 0 {
		return
	}
	seen := map[int]bool{}
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for i, r := range ret.Results {
			id, ok := ast.Unparen(r).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Uses[id]
			if obj == nil {
				continue
			}
			if ps, isPooled := fromGet[obj]; isPooled && !seen[i] {
				seen[i] = true
				x.sum.Pooled = append(x.sum.Pooled, PooledResult{Index: i, Desc: ps.Desc})
			}
		}
		return true
	})
	sort.Slice(x.sum.Pooled, func(i, j int) bool { return x.sum.Pooled[i].Index < x.sum.Pooled[j].Index })
}

// collectUnits gathers the declaration body and every folded literal,
// excluding literals launched by `go` (and everything inside them).
func (x *extractor) collectUnits(body *ast.BlockStmt, lit *ast.FuncLit, parent *unit) {
	u := &unit{body: body, lit: lit, parent: parent}
	x.units = append(x.units, u)
	goLits := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if l, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				goLits[l] = true
			}
		}
		return true
	})
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok {
			if !goLits[l] {
				x.collectUnits(l.Body, l, u)
			}
			return false
		}
		return true
	}
	for _, st := range body.List {
		ast.Inspect(st, walk)
	}
}

// scanUnit records the unit's direct alloc and block sites and computes
// its attribution coverage.
func (x *extractor) scanUnit(u *unit) {
	info := x.p.Info
	u.g = cfg.New(u.body)
	for _, blk := range u.g.Blocks {
		for i, n := range blk.Nodes {
			u.nodeOf = append(u.nodeOf, nodeSpan{from: n.Pos(), to: n.End(), block: blk.Index, idx: i})
		}
	}
	u.coverAll = map[int]bool{}
	u.coverPre = map[int]int{}
	u.coverPost = map[int]int{}

	type sitePoint struct {
		block, idx int
	}
	var addWaits, deferAdds []sitePoint

	// Statements whose subtree we skip when collecting alloc sites:
	// panic arguments are error paths, never hot.
	panicArgs := map[ast.Node]bool{}
	// Appends writing back to their own base are amortized growth, not
	// per-call allocation.
	selfAppend := map[*ast.CallExpr]bool{}
	// Selects with a default clause never block; their comm ops are
	// attempts. Selects without one block as a whole: one site at the
	// select keyword, comm ops skipped individually.
	selectComm := map[ast.Node]bool{}

	goLits := map[*ast.FuncLit]bool{}
	ast.Inspect(u.body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if l, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				goLits[l] = true
			}
		}
		return true
	})

	scan := func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncLit:
				if !goLits[v] {
					// The launched case is charged at its go statement.
					x.addAlloc(u, v.Pos(), "closure allocates")
				}
				return false
			case *ast.GoStmt:
				x.addAlloc(u, v.Pos(), "goroutine launch allocates")
				return true
			case *ast.SelectStmt:
				hasDefault := false
				for _, cc := range v.Body.List {
					if clause, ok := cc.(*ast.CommClause); ok && clause.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					x.addBlock(u, v.Pos(), "blocking select")
				}
				for _, cc := range v.Body.List {
					if clause, ok := cc.(*ast.CommClause); ok && clause.Comm != nil {
						selectComm[clause.Comm] = true
						// Sends/recvs nested inside the comm statement's
						// expressions are the guarded ops themselves.
						ast.Inspect(clause.Comm, func(m ast.Node) bool {
							switch m.(type) {
							case *ast.SendStmt:
								selectComm[m] = true
							case *ast.UnaryExpr:
								if ue, ok := m.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
									selectComm[m] = true
								}
							}
							return true
						})
					}
				}
				return true
			case *ast.SendStmt:
				if !selectComm[v] {
					x.addBlock(u, v.Pos(), "channel send")
				}
			case *ast.UnaryExpr:
				if v.Op == token.ARROW && !selectComm[v] {
					x.addBlock(u, v.Pos(), "channel receive")
				}
				if v.Op == token.AND {
					if _, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
						x.addAlloc(u, v.Pos(), "&composite literal allocates")
					}
				}
			case *ast.RangeStmt:
				if tv, ok := info.Types[v.X]; ok && isChanType(tv.Type) {
					x.addBlock(u, v.X.Pos(), "range over channel")
				}
			case *ast.CompositeLit:
				if panicArgs[v] {
					return true
				}
				if tv, ok := info.Types[v]; ok {
					switch tv.Type.Underlying().(type) {
					case *types.Slice:
						x.addAlloc(u, v.Pos(), "slice literal allocates")
					case *types.Map:
						x.addAlloc(u, v.Pos(), "map literal allocates")
					}
				}
			case *ast.AssignStmt:
				for li, r := range v.Rhs {
					if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && li < len(v.Lhs) {
						if isBuiltinCall(info, call, "append") && len(call.Args) > 0 {
							base := ast.Unparen(call.Args[0])
							if se, ok := base.(*ast.SliceExpr); ok {
								base = ast.Unparen(se.X)
							}
							if types.ExprString(base) == types.ExprString(ast.Unparen(v.Lhs[li])) {
								selfAppend[call] = true
							}
						}
					}
				}
			case *ast.CallExpr:
				x.scanCall(u, v, panicArgs, selfAppend)
			}
			return true
		})
	}

	// Pre-pass: find panic arguments so allocation inside them is
	// exempt, and AddWait/defer attribution anchors.
	for _, st := range u.body.List {
		ast.Inspect(st, func(n ast.Node) bool {
			if l, ok := n.(*ast.FuncLit); ok {
				_ = l
				return false // nested units scan themselves
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin || info.Uses[id] == nil {
						x.sum.Panics = true
						for _, a := range call.Args {
							x.panicSpans = append(x.panicSpans, [2]token.Pos{a.Pos(), a.End()})
							ast.Inspect(a, func(m ast.Node) bool {
								panicArgs[m] = true
								return true
							})
						}
					}
				}
			}
			return true
		})
	}
	addWaitPoints := func(n ast.Node, intoLits bool) []token.Pos {
		var out []token.Pos
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok && !intoLits {
				return false
			}
			if call, ok := m.(*ast.CallExpr); ok && x.isWaitFunc(call) {
				out = append(out, call.Pos())
			}
			return true
		})
		return out
	}
	for _, blk := range u.g.Blocks {
		for i, n := range blk.Nodes {
			if d, ok := n.(*ast.DeferStmt); ok {
				if len(addWaitPoints(d, true)) > 0 {
					deferAdds = append(deferAdds, sitePoint{blk.Index, i})
				}
				continue
			}
			if len(addWaitPoints(n, false)) > 0 {
				addWaits = append(addWaits, sitePoint{blk.Index, i})
			}
		}
	}

	// Coverage: a defer carrying AddWait covers everything at and after
	// it (the deferred attribution runs whenever the function exits); an
	// inline AddWait covers the nodes strictly ahead of it along forward
	// edges — back edges are excluded, so a site inside a loop is NOT
	// covered by an AddWait that executed on a previous iteration or in
	// an earlier loop.
	succs := make([][]int, len(u.g.Blocks))
	predsFwd := make([][]int, len(u.g.Blocks))
	for _, blk := range u.g.Blocks {
		for _, e := range blk.Succs {
			succs[blk.Index] = append(succs[blk.Index], e.To.Index)
			if e.Kind != cfg.Back {
				predsFwd[e.To.Index] = append(predsFwd[e.To.Index], blk.Index)
			}
		}
	}
	bfs := func(start int, adj [][]int) {
		seen := map[int]bool{start: true}
		queue := []int{start}
		for len(queue) > 0 {
			b := queue[0]
			queue = queue[1:]
			for _, nx := range adj[b] {
				if !seen[nx] {
					seen[nx] = true
					u.coverAll[nx] = true
					queue = append(queue, nx)
				}
			}
		}
	}
	for _, d := range deferAdds {
		if cur, ok := u.coverPost[d.block]; !ok || d.idx < cur {
			u.coverPost[d.block] = d.idx
		}
		bfs(d.block, succs)
	}
	for _, a := range addWaits {
		if cur, ok := u.coverPre[a.block]; !ok || a.idx > cur {
			u.coverPre[a.block] = a.idx
		}
		bfs(a.block, predsFwd)
	}

	for _, st := range u.body.List {
		scan(st)
	}
}

// scanCall classifies one call expression's allocation behavior.
func (x *extractor) scanCall(u *unit, call *ast.CallExpr, panicArgs map[ast.Node]bool, selfAppend map[*ast.CallExpr]bool) {
	info := x.p.Info
	if panicArgs[call] {
		return
	}
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				x.addAlloc(u, call.Pos(), "make allocates")
			case "new":
				x.addAlloc(u, call.Pos(), "new allocates")
			case "append":
				if !selfAppend[call] {
					x.addAlloc(u, call.Pos(), "append may grow (non-self target)")
				}
			}
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: string↔[]byte/[]rune copy.
		if len(call.Args) == 1 {
			to := tv.Type.Underlying()
			from := info.Types[call.Args[0]].Type
			if from != nil {
				if isStringByteConv(to, from.Underlying()) {
					x.addAlloc(u, call.Pos(), "string conversion copies")
				}
			}
		}
		return
	}
	// Interface boxing at call arguments: a concrete non-pointer value
	// passed as an interface parameter heap-allocates its box.
	if tv, ok := info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			x.boxingAt(u, call, sig)
		}
	}
}

// boxingAt flags concrete→interface argument conversions.
func (x *extractor) boxingAt(u *unit, call *ast.CallExpr, sig *types.Signature) {
	info := x.p.Info
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if i < params.Len() {
			pt = params.At(i).Type()
		} else if sig.Variadic() && params.Len() > 0 {
			pt = params.At(params.Len() - 1).Type()
		}
		if pt == nil {
			continue
		}
		if sig.Variadic() && i >= params.Len()-1 {
			if sl, ok := pt.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			continue // pointer-shaped: fits the interface word
		}
		if bt, ok := at.Underlying().(*types.Basic); ok && bt.Kind() == types.UntypedNil {
			continue
		}
		x.addAlloc(u, arg.Pos(), "interface boxing allocates")
	}
}

// isWaitFunc matches calls to the configured attribution sinks
// (TaskContext.AddWait, Span.AddWait).
func (x *extractor) isWaitFunc(call *ast.CallExpr) bool {
	fn := calleeFunc(x.p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	for _, w := range x.ip.c.WaitFuncs {
		if fn.Pkg().Path() == w.Pkg && fn.Name() == w.Func && recvMatches(fn, w.Recv) {
			return true
		}
	}
	return false
}

func (x *extractor) addAlloc(u *unit, pos token.Pos, what string) {
	x.sum.Allocs = append(x.sum.Allocs, AllocSite{P: x.ip.site(pos), What: what})
}

// addBlock records a blocking site; coverage is computed before the
// site scan runs (and parents before their literals), so attribution is
// stamped immediately.
func (x *extractor) addBlock(u *unit, pos token.Pos, what string) {
	x.sum.Blocks = append(x.sum.Blocks, BlockSite{
		P: x.ip.site(pos), What: what, Attributed: u.attributedAt(pos),
	})
}

// edges lifts the call graph's sites into serializable facts, stamping
// attribution, and folds configured external blockers into block sites.
func (x *extractor) edges(f *cfg.CGFunc) {
	blockExt := map[string]bool{}
	for _, e := range x.ip.c.BlockExt {
		blockExt[e] = true
	}
	if x.ip.c.LockWaits {
		for _, e := range []string{
			"sync.(Mutex).Lock", "sync.(RWMutex).Lock", "sync.(RWMutex).RLock",
		} {
			blockExt[e] = true
		}
	}
	for _, s := range f.Calls {
		pos := s.Node.Pos()
		if x.inPanicArg(pos) {
			continue // error-path call (panic message formatting)
		}
		u := x.unitAt(pos)
		attributed := u != nil && u.attributedAt(pos)
		ef := EdgeFact{P: x.ip.site(pos), Kind: s.Kind.String(), Go: s.Go, Attributed: attributed}
		switch s.Kind {
		case cfg.Static, cfg.Method, cfg.Ref:
			ef.Callees = []string{s.Callee}
		case cfg.Interface:
			ef.Callees = s.Callees
			ef.Ext = s.Callee
		case cfg.External:
			ef.Ext = s.Callee
		}
		x.sum.Edges = append(x.sum.Edges, ef)
		// Interface dispatch matches the blocker list by declared
		// symbol: a call through an enumerated interface method
		// (net.(Conn).Read/Write) blocks by contract no matter which
		// implementation lands — including ones outside the module,
		// which the callee walk can never reach.
		if (s.Kind == cfg.External || s.Kind == cfg.Interface) && blockExt[s.Callee] {
			x.sum.Blocks = append(x.sum.Blocks, BlockSite{
				P: x.ip.site(pos), What: "call to " + s.Callee, Attributed: attributed,
			})
		}
	}
}

// params classifies what the function does with each resource-typed
// parameter.
func (x *extractor) params(f *cfg.CGFunc) {
	sig, ok := f.Fn.Type().(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	info := x.p.Info
	la := &leakAnalysis{c: x.ec, p: x.p} // reuse release matching
	for i := 0; i < sig.Params().Len(); i++ {
		pv := sig.Params().At(i)
		n := namedType(pv.Type())
		if n == nil || n.Obj().Pkg() == nil {
			continue
		}
		tkey := n.Obj().Pkg().Path() + "." + n.Obj().Name()
		if _, isRes := x.restypes[tkey]; !isRes {
			continue
		}
		fact := ParamFact{Index: i, Type: tkey, Action: ParamNone}
		x.paramScan(f.Decl.Body, info, la, pv, i, &fact)
		x.sum.Params = append(x.sum.Params, fact)
	}
}

// paramScan walks the whole body (literals included: a release inside a
// closure or goroutine still counts as may-release) looking for
// evidence. Benign uses — release target, method receiver, field read,
// comparison operand — leave the action at none.
func (x *extractor) paramScan(body *ast.BlockStmt, info *types.Info, la *leakAnalysis, pv *types.Var, index int, fact *ParamFact) {
	isParam := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		return info.Uses[id] == pv
	}
	strengthen := func(a string) {
		rank := map[string]int{ParamNone: 0, ParamKept: 1, ParamReleased: 2}
		if rank[a] > rank[fact.Action] {
			fact.Action = a
		}
	}
	skip := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if skip[n] {
			return true
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			if target, isRel := la.releaseTarget(v); isRel && isParam(target) {
				strengthen(ParamReleased)
				skip[target] = true
				return true
			}
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok && isParam(sel.X) {
				// Method call on the resource itself: benign use.
				skip[sel.X] = true
			}
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
				if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					switch b.Name() {
					case "append":
						for ai, arg := range v.Args {
							if !isParam(arg) {
								continue
							}
							skip[ast.Unparen(arg)] = true
							if v.Ellipsis.IsValid() && ai == len(v.Args)-1 {
								continue // spread: the elements copy out
							}
							// Base or stored element: the result may alias
							// or retain the container.
							strengthen(ParamKept)
						}
					default:
						// len/cap/copy/clear/delete/min/max/...: reads of
						// the container, never retention.
						for _, arg := range v.Args {
							if isParam(arg) {
								skip[ast.Unparen(arg)] = true
							}
						}
					}
					return true
				}
			}
			fn := calleeFunc(info, v)
			for ai, arg := range v.Args {
				if !isParam(arg) {
					continue
				}
				skip[ast.Unparen(arg)] = true
				if fn == nil || fn.Pkg() == nil {
					strengthen(ParamKept) // dynamic callee: assume transfer
					continue
				}
				csig, _ := fn.Type().(*types.Signature)
				if csig == nil || (csig.Variadic() && ai >= csig.Params().Len()-1) {
					strengthen(ParamKept)
					continue
				}
				if ai >= csig.Params().Len() {
					strengthen(ParamKept)
					continue
				}
				// Forwarded verbatim: record the flow; the fixpoint
				// resolves whether the callee handles it.
				x.sum.Flows = append(x.sum.Flows, ParamFlow{
					Param: index, Callee: cfg.FuncID(fn), CalleeParam: ai,
				})
			}
		case *ast.ReturnStmt:
			for _, r := range v.Results {
				if isParam(r) {
					strengthen(ParamKept)
					skip[ast.Unparen(r)] = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range v.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if isParam(e) {
					strengthen(ParamKept)
					skip[ast.Unparen(e)] = true
				}
			}
		case *ast.SendStmt:
			if isParam(v.Value) {
				strengthen(ParamKept)
				skip[ast.Unparen(v.Value)] = true
			}
		case *ast.AssignStmt:
			for _, r := range v.Rhs {
				if isParam(r) {
					strengthen(ParamKept) // aliased or stored: transfer
					skip[ast.Unparen(r)] = true
				}
			}
		case *ast.SelectorExpr:
			if isParam(v.X) {
				skip[ast.Unparen(v.X)] = true // field read: benign
			}
		case *ast.RangeStmt:
			if isParam(v.X) {
				skip[ast.Unparen(v.X)] = true // iteration reads
			}
		case *ast.IndexExpr:
			if isParam(v.X) {
				skip[ast.Unparen(v.X)] = true // element read/write
			}
		case *ast.SliceExpr:
			if isParam(v.X) {
				skip[ast.Unparen(v.X)] = true // view of the container
			}
		case *ast.BinaryExpr:
			if isParam(v.X) {
				skip[ast.Unparen(v.X)] = true
			}
			if isParam(v.Y) {
				skip[ast.Unparen(v.Y)] = true
			}
		case *ast.Ident:
			if info.Uses[v] == pv && !skip[v] {
				// Bare use in an unclassified position: conservative
				// transfer (matches the old blanket-escape behavior).
				strengthen(ParamKept)
			}
		}
		return true
	})
}

// --- small type helpers ---

func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isStringByteConv reports a conversion that copies between string and
// []byte/[]rune.
func isStringByteConv(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		e, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
	}
	return (isStr(to) && isBytes(from)) || (isBytes(to) && isStr(from))
}

// --- summary cache ---

const summaryCacheVersion = "asterixlint-summaries-v2"

type summaryCacheFile struct {
	Version   string     `json:"version"`
	Summaries []*Summary `json:"summaries"`
}

// cacheKey hashes the schema version, the config, and the sorted
// (path, content-hash) set of every Go file in the loaded packages: any
// source or config change misses.
func cacheKey(c *Config, modRoot string, pkgs []*Package) string {
	h := sha256.New()
	fmt.Fprintln(h, summaryCacheVersion)
	fmt.Fprintf(h, "%+v\n", *c)
	var files []string
	seen := map[string]bool{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			name := p.Fset.Position(f.Pos()).Filename
			if !seen[name] {
				seen[name] = true
				files = append(files, name)
			}
		}
	}
	sort.Strings(files)
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintf(h, "%s unreadable\n", name)
			continue
		}
		rel := name
		if modRoot != "" {
			if r, err := filepath.Rel(modRoot, name); err == nil {
				rel = filepath.ToSlash(r)
			}
		}
		sum := sha256.Sum256(data)
		fmt.Fprintf(h, "%s %s\n", rel, hex.EncodeToString(sum[:]))
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

func loadSummaryCache(path string, ip *Interp) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	var f summaryCacheFile
	if err := json.Unmarshal(data, &f); err != nil || f.Version != summaryCacheVersion {
		return false
	}
	for _, s := range f.Summaries {
		ip.sums[s.ID] = s
		ip.ids = append(ip.ids, s.ID)
	}
	sort.Strings(ip.ids)
	return true
}

func saveSummaryCache(dir, key string, ip *Interp) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	f := summaryCacheFile{Version: summaryCacheVersion}
	for _, id := range ip.ids {
		f.Summaries = append(f.Summaries, ip.sums[id])
	}
	data, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return
	}
	tmp := filepath.Join(dir, key+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	//lint:ignore err-discard the summary cache is best-effort: a failed rename just means the next run rebuilds summaries from source
	_ = os.Rename(tmp, filepath.Join(dir, key+".json"))
}
