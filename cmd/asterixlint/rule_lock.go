package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ruleLockHeld flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held: channel sends/receives, blocking selects, ranging
// over a channel, sync.WaitGroup.Wait, time.Sleep, and calls into the
// blocking-I/O packages (os, io, net, net/http). Blocking under a lock is
// how the executor/txn/metadata layers deadlock or collapse under
// concurrency, so the default is "don't"; the rare deliberate cases (WAL
// writes that must be ordered under the log mutex) carry a lint:ignore
// with a written reason.
//
// The analysis is per-function and statement-ordered: a Lock() raises the
// held depth, Unlock() lowers it, and `defer Unlock()` holds it for the
// rest of the function. sync.Cond.Wait is exempt (it requires the lock by
// contract), as are selects with a default clause (non-blocking).
func ruleLockHeld() *Rule {
	return &Rule{
		Name: "lock-held",
		Doc:  "no channel ops, Wait, or blocking I/O while a mutex is held",
		Run:  runLockHeld,
	}
}

var blockingPkgs = map[string]bool{"os": true, "io": true, "net": true, "net/http": true}

// nonBlockingFuncs are pure helpers in the blocking packages that never
// touch the disk or network.
var nonBlockingFuncs = map[string]bool{
	"os.IsNotExist": true, "os.IsExist": true, "os.IsPermission": true,
	"os.IsTimeout": true, "os.Getenv": true, "os.LookupEnv": true,
	"os.Getpid": true, "io.LimitReader": true, "io.MultiReader": true,
	"io.MultiWriter": true, "io.NopCloser": true,
}

func runLockHeld(c *Config, p *Package, report func(token.Pos, string)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				st := &lockWalk{p: p, report: report}
				st.stmts(body.List)
			}
			return true // nested literals are visited as their own functions
		})
	}
}

type lockWalk struct {
	p      *Package
	report func(token.Pos, string)
	depth  int
}

// mutexMethod classifies a call as a Lock/Unlock-family method on
// sync.Mutex or sync.RWMutex.
func (w *lockWalk) mutexMethod(call *ast.CallExpr) string {
	fn := calleeFunc(w.p.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := namedType(sig.Recv().Type())
	if rt == nil || (rt.Obj().Name() != "Mutex" && rt.Obj().Name() != "RWMutex") {
		return ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
		return fn.Name()
	}
	return ""
}

func (w *lockWalk) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *lockWalk) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		w.stmts(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.checkExpr(st.Cond)
		w.stmt(st.Body)
		if st.Else != nil {
			w.stmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Cond != nil {
			w.checkExpr(st.Cond)
		}
		w.stmt(st.Body)
		if st.Post != nil {
			w.stmt(st.Post)
		}
	case *ast.RangeStmt:
		if w.depth > 0 {
			if tv, ok := w.p.Info.Types[st.X]; ok && isChanType(tv.Type) {
				w.report(st.Pos(), "ranging over a channel while a mutex is held")
			}
		}
		w.checkExpr(st.X)
		w.stmt(st.Body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Tag != nil {
			w.checkExpr(st.Tag)
		}
		for _, cc := range st.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				w.stmts(clause.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range st.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				w.stmts(clause.Body)
			}
		}
	case *ast.SelectStmt:
		if hasDefaultClause(st) {
			// Non-blocking: the select completes immediately either way.
			// Still walk the clause bodies for lock transitions and
			// further violations.
			for _, cc := range st.Body.List {
				if clause, ok := cc.(*ast.CommClause); ok {
					w.stmts(clause.Body)
				}
			}
			return
		}
		if w.depth > 0 {
			w.report(st.Pos(), "blocking select while a mutex is held")
		}
		for _, cc := range st.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				w.stmts(clause.Body)
			}
		}
	case *ast.SendStmt:
		if w.depth > 0 {
			w.report(st.Pos(), "channel send while a mutex is held")
		}
	case *ast.GoStmt:
		// Starting a goroutine is non-blocking, and its body runs with a
		// fresh stack: analyzed when the FuncLit itself is visited.
	case *ast.DeferStmt:
		// `defer mu.Unlock()` (directly or inside a deferred closure):
		// the lock stays held to function end; leave the depth as-is and
		// don't treat the deferred body as executing here.
		deferredUnlock := false
		ast.Inspect(st.Call, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				switch w.mutexMethod(call) {
				case "Unlock", "RUnlock":
					deferredUnlock = true
					return false
				}
			}
			return true
		})
		if deferredUnlock {
			return
		}
		// Argument expressions evaluate now; the call itself runs at exit.
		for _, a := range st.Call.Args {
			w.checkExpr(a)
		}
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			switch w.mutexMethod(call) {
			case "Lock", "RLock":
				w.depth++
				return
			case "Unlock", "RUnlock":
				if w.depth > 0 {
					w.depth--
				}
				return
			}
		}
		w.checkExpr(st.X)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.checkExpr(e)
		}
		for _, e := range st.Lhs {
			w.checkExpr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.checkExpr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.checkExpr(e)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	case *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt:
	}
}

// checkExpr scans an expression tree (excluding function literal bodies,
// which execute elsewhere) for blocking operations while a lock is held.
func (w *lockWalk) checkExpr(e ast.Expr) {
	if w.depth == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.report(x.Pos(), "channel receive while a mutex is held")
			}
		case *ast.CallExpr:
			w.checkCall(x)
		}
		return true
	})
}

func (w *lockWalk) checkCall(call *ast.CallExpr) {
	fn := calleeFunc(w.p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg := fn.Pkg().Path()
	if pkg == "sync" {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			rt := namedType(sig.Recv().Type())
			if rt != nil && rt.Obj().Name() == "WaitGroup" && fn.Name() == "Wait" {
				w.report(call.Pos(), "sync.WaitGroup.Wait while a mutex is held")
			}
			// sync.Cond.Wait is exempt: it requires the lock by contract.
		}
		return
	}
	if pkg == "time" && fn.Name() == "Sleep" {
		w.report(call.Pos(), "time.Sleep while a mutex is held")
		return
	}
	if blockingPkgs[pkg] && !nonBlockingFuncs[pkg+"."+fn.Name()] {
		w.report(call.Pos(), "blocking I/O ("+pkg+"."+fn.Name()+") while a mutex is held")
	}
}

func hasDefaultClause(sel *ast.SelectStmt) bool {
	for _, cc := range sel.Body.List {
		if clause, ok := cc.(*ast.CommClause); ok && clause.Comm == nil {
			return true
		}
	}
	return false
}
