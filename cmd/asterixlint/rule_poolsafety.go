package main

// The pool-safety rule family tracks pooled buffers from a registered
// Get to their Put on every CFG path. Putting a container transfers
// ownership back to the pool — it may be handed out to another goroutine
// immediately and its elements are cleared — so the lifetime contract
// is: use freely between Get and Put, Put at most once, and never Put a
// container whose ownership already moved to someone else (stored,
// sent, or returned). The four finding kinds:
//
//   - pool-use-after-put: any read or write of the variable after a
//     path on which it was Put.
//   - pool-double-put: a second Put of the same container (including an
//     inline Put shadowed by a pending deferred Put).
//   - pool-missing-put: a path that returns (or panics) while the
//     function still owns a live container — the classic forgotten
//     error-path Put. Dropping a container is GC-safe at runtime but
//     silently degrades the pool, so the lint insists on an explicit
//     Put or an ownership handoff.
//   - pool-escape-past-put: a Put after ownership already escaped —
//     the pool would recycle a container someone else still holds.
//
// Escape is approximated structurally: channel sends, returns,
// composite-literal elements, stores into fields/maps/slices,
// append-as-element, goroutine arguments, address-taking, and closure
// captures transfer ownership. Plain aliasing (`g := f`) and handing
// the value to a callee whose summary resolves the parameter as "kept"
// end tracking silently (the analysis cannot follow the alias, so it
// stays quiet rather than guess). Call arguments are otherwise loans:
// the callee borrows the container and the caller still owes the Put —
// except a callee whose summary resolves the parameter "released" is
// credited as the Put itself. Reslicing (`k := rec[:n]`) creates an
// untracked view and leaves the site live: the view is how merge loops
// read key/state halves out of a pooled tuple before recycling it.
//
// Functions that return a pool-Get value verbatim are producers: their
// summaries carry Pooled facts (see summary.go), and a caller assigning
// such a call's results starts tracking the pooled result, with the
// usual error/ok-companion branch refinements.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"asterix/cmd/asterixlint/cfg"
)

const (
	poolUseAfterPut   = "pool-use-after-put"
	poolDoublePut     = "pool-double-put"
	poolMissingPut    = "pool-missing-put"
	poolEscapePastPut = "pool-escape-past-put"
)

// PoolSpec registers one buffer pool type for the pool-safety family.
// Pkg.Recv is the pool's named type; Get/Put are its method names. When
// the pooled element is itself a named type (TuplePool's Tuple), ElemPkg
// and ElemType name it so helper parameters of that type get
// interprocedural kept/released classification; pools of unnamed
// containers ([]Tuple, []byte) leave them empty and call arguments stay
// loans.
type PoolSpec struct {
	Pkg, Recv string
	Get, Put  string
	ElemPkg   string
	ElemType  string
	Desc      string
}

// poolSafetyRules returns the family. The four rules share one analysis
// pass (memoized in poolState) so selecting any subset computes the
// findings once and reports only the selected kinds.
func poolSafetyRules() []*Rule {
	st := &poolState{}
	mk := func(name, doc string) *Rule {
		return &Rule{
			Name: name,
			Doc:  doc,
			Interp: func(c *Config, ip *Interp, report func(token.Position, string)) {
				st.run(c, ip)
				for _, f := range st.findings[name] {
					report(f.pos, f.msg)
				}
			},
		}
	}
	return []*Rule{
		mk(poolUseAfterPut, "pooled buffers must not be touched after Put returns them to the pool"),
		mk(poolDoublePut, "a pooled buffer must be returned to the pool at most once"),
		mk(poolMissingPut, "pooled buffers must reach Put (or an ownership handoff) on every path"),
		mk(poolEscapePastPut, "a pooled buffer whose ownership escaped must not be recycled"),
	}
}

type poolFinding struct {
	pos token.Position
	msg string
}

type poolState struct {
	done     bool
	findings map[string][]poolFinding
}

func (st *poolState) run(c *Config, ip *Interp) {
	if st.done {
		return
	}
	st.done = true
	st.findings = map[string][]poolFinding{}
	if len(c.Pools) == 0 {
		return
	}
	for _, p := range ip.Pkgs() {
		p := p
		emit := func(kind string, pos token.Pos, msg string) {
			st.findings[kind] = append(st.findings[kind], poolFinding{p.Fset.Position(pos), msg})
		}
		funcBodies(p, func(_ *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
			a := newPoolAnalysis(c, p, ip, emit)
			a.check(body)
		})
	}
}

// poolSite is one tracked acquisition: a direct pool Get or a pooled
// result returned by a producer function.
type poolSite struct {
	id   string // stable per-function id (position string)
	pos  token.Pos
	desc string // "pooled frame", ...
	from string // "FramePool.Get" or the producer function's name
	tkey string // "pkg.Elem" when the container's type is a registered elem
	obj  types.Object
}

type poolAnalysis struct {
	c    *Config
	p    *Package
	ip   *Interp
	emit func(kind string, pos token.Pos, msg string)

	sites    map[string]*poolSite
	byNode   map[ast.Node][]*poolSite
	byObj    map[types.Object]*poolSite
	errObjs  map[types.Object][]*poolSite // companion error results
	okObjs   map[types.Object][]*poolSite // companion bool results
	reported map[string]bool
}

func newPoolAnalysis(c *Config, p *Package, ip *Interp, emit func(string, token.Pos, string)) *poolAnalysis {
	return &poolAnalysis{
		c: c, p: p, ip: ip, emit: emit,
		sites:    map[string]*poolSite{},
		byNode:   map[ast.Node][]*poolSite{},
		byObj:    map[types.Object]*poolSite{},
		errObjs:  map[types.Object][]*poolSite{},
		okObjs:   map[types.Object][]*poolSite{},
		reported: map[string]bool{},
	}
}

// poolSpecOfRecv matches a receiver type against the registered pools.
func poolSpecOfRecv(c *Config, t types.Type) *PoolSpec {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return nil
	}
	for i := range c.Pools {
		ps := &c.Pools[i]
		if n.Obj().Pkg().Path() == ps.Pkg && n.Obj().Name() == ps.Recv {
			return ps
		}
	}
	return nil
}

// poolGetSpec matches `pool.Get()` for a registered pool.
func poolGetSpec(c *Config, info *types.Info, call *ast.CallExpr) *PoolSpec {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	ps := poolSpecOfRecv(c, info.TypeOf(sel.X))
	if ps == nil || sel.Sel.Name != ps.Get {
		return nil
	}
	return ps
}

// poolPutTarget matches `pool.Put(x)` and returns x.
func poolPutTarget(c *Config, info *types.Info, call *ast.CallExpr) (ast.Expr, *PoolSpec) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	ps := poolSpecOfRecv(c, info.TypeOf(sel.X))
	if ps == nil || sel.Sel.Name != ps.Put || len(call.Args) < 1 {
		return nil, nil
	}
	return call.Args[0], ps
}

func (a *poolAnalysis) getCall(call *ast.CallExpr) *PoolSpec {
	return poolGetSpec(a.c, a.p.Info, call)
}

func (a *poolAnalysis) putTarget(call *ast.CallExpr) (ast.Expr, *PoolSpec) {
	return poolPutTarget(a.c, a.p.Info, call)
}

// pooledResults resolves a call to a producer function whose summary
// returns pooled containers.
func (a *poolAnalysis) pooledResults(call *ast.CallExpr) (*types.Func, []PooledResult) {
	if a.ip == nil {
		return nil, nil
	}
	fn := calleeFunc(a.p.Info, call)
	if fn == nil {
		return nil, nil
	}
	sum := a.ip.SummaryFor(fn)
	if sum == nil || len(sum.Pooled) == 0 {
		return nil, nil
	}
	return fn, sum.Pooled
}

func (a *poolAnalysis) objOf(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := a.p.Info.Uses[id]; obj != nil {
		return obj
	}
	return a.p.Info.Defs[id]
}

// elemKey returns "pkg.Type" when obj's named type is a registered pool
// element, else "".
func (a *poolAnalysis) elemKey(obj types.Object) string {
	n := namedType(obj.Type())
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	k := n.Obj().Pkg().Path() + "." + n.Obj().Name()
	for i := range a.c.Pools {
		ps := &a.c.Pools[i]
		if ps.ElemType != "" && ps.ElemPkg+"."+ps.ElemType == k {
			return k
		}
	}
	return ""
}

func (a *poolAnalysis) line(pos token.Pos) int { return a.p.Fset.Position(pos).Line }

func (a *poolAnalysis) reportOnce(key, kind string, pos token.Pos, msg string) {
	if a.reported[key] {
		return
	}
	a.reported[key] = true
	a.emit(kind, pos, msg)
}

// collect registers every acquisition, attaching sites to their
// generating node.
func (a *poolAnalysis) collect(g *cfg.Graph) {
	newSite := func(n ast.Node, pos token.Pos, desc, from string, obj, errObj, okObj types.Object) {
		s := &poolSite{
			id:   a.p.Fset.Position(pos).String(),
			pos:  pos,
			desc: desc,
			from: from,
			tkey: a.elemKey(obj),
			obj:  obj,
		}
		a.sites[s.id] = s
		a.byNode[n] = append(a.byNode[n], s)
		a.byObj[obj] = s
		if errObj != nil {
			a.errObjs[errObj] = append(a.errObjs[errObj], s)
		}
		if okObj != nil {
			a.okObjs[okObj] = append(a.okObjs[okObj], s)
		}
	}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 {
					continue
				}
				call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
				if !ok {
					continue
				}
				if ps := a.getCall(call); ps != nil {
					if len(st.Lhs) != 1 {
						continue
					}
					id, isIdent := ast.Unparen(st.Lhs[0]).(*ast.Ident)
					if !isIdent {
						continue // stored straight into a field/slot: owner escapes at birth
					}
					if id.Name == "_" {
						a.emit(poolMissingPut, call.Pos(), fmt.Sprintf(
							"%s from %s.%s is discarded with _: it can never be returned to the pool",
							ps.Desc, ps.Recv, ps.Get))
						continue
					}
					if obj := a.objOf(id); obj != nil {
						newSite(n, call.Pos(), ps.Desc, ps.Recv+"."+ps.Get, obj, nil, nil)
					}
					continue
				}
				if fn, pooled := a.pooledResults(call); fn != nil {
					var errObj, okObj types.Object
					for _, l := range st.Lhs {
						id, isIdent := ast.Unparen(l).(*ast.Ident)
						if !isIdent || id.Name == "_" {
							continue
						}
						o := a.objOf(id)
						if o == nil {
							continue
						}
						if isErrorType(o.Type()) {
							errObj = o
						} else if b, isBasic := o.Type().Underlying().(*types.Basic); isBasic && b.Kind() == types.Bool {
							okObj = o
						}
					}
					for _, pr := range pooled {
						idx := pr.Index
						if len(st.Lhs) == 1 {
							idx = 0 // single-value context of a single-result producer
						}
						if idx >= len(st.Lhs) {
							continue
						}
						id, isIdent := ast.Unparen(st.Lhs[idx]).(*ast.Ident)
						if !isIdent || id.Name == "_" {
							continue // dropped pooled result: a benign (GC-safe) drop
						}
						if obj := a.objOf(id); obj != nil {
							newSite(n, call.Pos(), pr.Desc, fn.Name(), obj, errObj, okObj)
						}
					}
				}
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
					if ps := a.getCall(call); ps != nil {
						a.emit(poolMissingPut, call.Pos(), fmt.Sprintf(
							"%s from %s.%s is discarded: the container can never be returned to the pool",
							ps.Desc, ps.Recv, ps.Get))
					}
				}
			}
		}
	}
}

func (a *poolAnalysis) check(body *ast.BlockStmt) {
	g := cfg.New(body)
	a.collect(g)
	if len(a.sites) == 0 {
		return
	}
	lat := cfg.Lattice[posSet]{
		Clone: clonePosSet,
		Meet:  meetPosSet,
		Equal: equalPosSet,
		Node:  a.transfer,
		Refine: func(blk *cfg.Block, e cfg.Edge, s posSet) posSet {
			return a.refine(blk, e, s)
		},
	}
	in := cfg.Forward(g, posSet{}, lat)
	cfg.Visit(g, in, lat,
		func(blk *cfg.Block, n ast.Node, before posSet) { a.checkNode(n, before) },
		func(blk *cfg.Block, e cfg.Edge, out posSet) { a.checkEdge(g, blk, e, out) })
}

func (a *poolAnalysis) killAll(s posSet, id string) {
	delete(s, "l|"+id)
	delete(s, "d|"+id)
	delete(s, "f|"+id)
	delete(s, "e|"+id)
}

// poolPut is one Put event found inside a node.
type poolPut struct {
	ident    *ast.Ident
	site     *poolSite
	pos      token.Pos
	deferred bool
}

// putsIn collects the Put events of tracked sites within n. Puts inside
// deferred calls (including deferred closures) run at function exit and
// are marked deferred; non-deferred closures are skipped — their body
// executes at some later call, not at this node.
func (a *poolAnalysis) putsIn(n ast.Node) []poolPut {
	var out []poolPut
	var deferSpans [][2]token.Pos
	ast.Inspect(n, func(x ast.Node) bool {
		if d, ok := x.(*ast.DeferStmt); ok {
			deferSpans = append(deferSpans, [2]token.Pos{d.Pos(), d.End()})
		}
		return true
	})
	inDefer := func(pos token.Pos) bool {
		for _, sp := range deferSpans {
			if sp[0] <= pos && pos < sp[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if l, ok := x.(*ast.FuncLit); ok && !inDefer(l.Pos()) {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		target, ps := a.putTarget(call)
		if ps == nil {
			return true
		}
		id, ok := ast.Unparen(target).(*ast.Ident)
		if !ok {
			return true
		}
		obj := a.objOf(id)
		if obj == nil {
			return true
		}
		site, tracked := a.byObj[obj]
		if !tracked {
			return true
		}
		out = append(out, poolPut{ident: id, site: site, pos: call.Pos(), deferred: inDefer(call.Pos())})
		return true
	})
	return out
}

// selfReuse reports whether rhs keeps obj's own container (append to
// self, re-slice of self) rather than replacing it.
func (a *poolAnalysis) selfReuse(rhs ast.Expr, obj types.Object) (*ast.Ident, bool) {
	if rhs == nil {
		return nil, false
	}
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		if isBuiltinCall(a.p.Info, e, "append") && len(e.Args) > 0 {
			base := ast.Unparen(e.Args[0])
			if se, ok := base.(*ast.SliceExpr); ok {
				base = ast.Unparen(se.X)
			}
			if id, ok := base.(*ast.Ident); ok && a.p.Info.Uses[id] == obj {
				return id, true
			}
		}
	case *ast.SliceExpr:
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && a.p.Info.Uses[id] == obj {
			return id, true
		}
	}
	return nil, false
}

// transfer is the per-node gen/kill function over the prefixed posSet:
// "l|id" live, "d|id" put (dead), "f|id" deferred-put pending, "e|id"
// escaped.
func (a *poolAnalysis) transfer(n ast.Node, s posSet) posSet {
	exempt := map[*ast.Ident]bool{}
	// 1. Puts.
	for _, pe := range a.putsIn(n) {
		exempt[pe.ident] = true
		id := pe.site.id
		if pe.deferred {
			if _, live := s["l|"+id]; live {
				delete(s, "l|"+id)
				s["f|"+id] = pe.pos
			}
			continue
		}
		delete(s, "l|"+id)
		delete(s, "f|"+id)
		s["d|"+id] = pe.pos
	}
	// 2. Ownership transfers.
	a.applyEscapes(n, s, exempt)
	// 3. Gen: the acquisition's own node (re-acquire into the same
	// variable drops the old site's facts).
	for _, site := range a.byNode[n] {
		for id, other := range a.sites {
			if other.obj == site.obj && id != site.id {
				a.killAll(s, id)
			}
		}
		a.killAll(s, site.id)
		s["l|"+site.id] = site.pos
	}
	// 4. A plain reassignment of a tracked variable ends tracking of the
	// old container; self-append/self-reslice keep it.
	if as, ok := n.(*ast.AssignStmt); ok && len(a.byNode[n]) == 0 {
		for i, l := range as.Lhs {
			obj := a.objOf(l)
			if obj == nil {
				continue
			}
			site, tracked := a.byObj[obj]
			if !tracked {
				continue
			}
			var rhs ast.Expr
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0]
			}
			if _, self := a.selfReuse(rhs, obj); self {
				continue
			}
			a.killAll(s, site.id)
		}
	}
	return s
}

// applyEscapes walks n classifying every use of a live tracked
// container. See the file comment for the approximation.
func (a *poolAnalysis) applyEscapes(n ast.Node, s posSet, exempt map[*ast.Ident]bool) {
	// A bare identifier as a whole CFG node is a read: the cfg builder
	// records range operands and switch tags as standalone expressions.
	if _, ok := n.(*ast.Ident); ok {
		return
	}
	live := func(e ast.Expr) *poolSite {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || exempt[id] {
			return nil
		}
		obj := a.objOf(id)
		if obj == nil {
			return nil
		}
		site, tracked := a.byObj[obj]
		if !tracked {
			return nil
		}
		if _, isLive := s["l|"+site.id]; !isLive {
			return nil
		}
		return site
	}
	escape := func(e ast.Expr, pos token.Pos) {
		if site := live(e); site != nil {
			delete(s, "l|"+site.id)
			s["e|"+site.id] = pos
		}
	}
	silent := func(e ast.Expr) {
		if site := live(e); site != nil {
			delete(s, "l|"+site.id)
		}
	}
	var scan func(x ast.Node)
	scan = func(x ast.Node) {
		switch v := x.(type) {
		case nil:
			return
		case *ast.Ident:
			// Bare use in an unhandled context: assume the container
			// escaped (conservative — a report names the witness).
			escape(v, v.Pos())
		case *ast.ParenExpr:
			scan(v.X)
		case *ast.SelectorExpr:
			if live(v.X) != nil {
				return // field/method read off the container: benign
			}
			scan(v.X)
		case *ast.IndexExpr:
			if live(v.X) == nil {
				scan(v.X)
			}
			scan(v.Index)
		case *ast.SliceExpr:
			// Re-slicing creates an untracked view; the container stays
			// owned (merge loops read key/state halves this way).
			if live(v.X) == nil {
				scan(v.X)
			}
			scan(v.Low)
			scan(v.High)
			scan(v.Max)
		case *ast.BinaryExpr:
			if live(v.X) == nil {
				scan(v.X)
			}
			if live(v.Y) == nil {
				scan(v.Y)
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				escape(v.X, v.Pos())
				return
			}
			scan(v.X)
		case *ast.SendStmt:
			if live(v.Value) != nil {
				escape(v.Value, v.Pos())
			} else {
				scan(v.Value)
			}
			scan(v.Chan)
		case *ast.ReturnStmt:
			for _, r := range v.Results {
				if live(r) != nil {
					escape(r, v.Pos())
				} else {
					scan(r)
				}
			}
		case *ast.CompositeLit:
			for _, el := range v.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					scan(kv.Key)
					e = kv.Value
				}
				if live(e) != nil {
					escape(e, e.Pos())
				} else {
					scan(e)
				}
			}
		case *ast.GoStmt:
			for _, arg := range v.Call.Args {
				if live(arg) != nil {
					escape(arg, v.Pos())
				} else {
					scan(arg)
				}
			}
			scan(v.Call.Fun)
		case *ast.DeferStmt:
			scan(v.Call)
		case *ast.RangeStmt:
			if live(v.X) == nil {
				scan(v.X)
			}
		case *ast.CallExpr:
			a.scanCall(v, s, exempt, live, escape, silent, scan)
		case *ast.AssignStmt:
			for i, l := range v.Lhs {
				var rhs ast.Expr
				if len(v.Rhs) == len(v.Lhs) {
					rhs = v.Rhs[i]
				} else if len(v.Rhs) == 1 {
					rhs = v.Rhs[0]
				}
				switch lt := ast.Unparen(l).(type) {
				case *ast.Ident:
					// Reassignment targets are transfer's business. Mark
					// self-reuse bases and alias sources so the RHS scan
					// below does not treat them as escapes.
					if obj := a.objOf(lt); obj != nil {
						if base, self := a.selfReuse(rhs, obj); self {
							exempt[base] = true
						}
					}
					if rhs != nil {
						if rid, ok := ast.Unparen(rhs).(*ast.Ident); ok {
							if lt.Name == "_" {
								exempt[rid] = true // `_ = f`: a no-op read
							} else if live(rhs) != nil {
								// Plain alias `g := f`: tracking cannot
								// follow g, so end silently rather than
								// report against the untracked alias.
								silent(rhs)
								exempt[rid] = true
							}
						}
					}
				case *ast.IndexExpr:
					// f[i] = x writes into the owned container: benign.
					if live(lt.X) == nil {
						scan(lt.X)
					}
					scan(lt.Index)
				case *ast.SelectorExpr:
					if live(lt.X) == nil {
						scan(lt.X)
					}
				default:
					scan(l)
				}
			}
			for _, r := range v.Rhs {
				scan(r)
			}
		case *ast.FuncLit:
			// Closure capture: the closure may run later, so a captured
			// live container escapes to its lifetime (deferred-Put
			// closures were exempted by the put pass).
			ast.Inspect(v.Body, func(y ast.Node) bool {
				if id, ok := y.(*ast.Ident); ok && !exempt[id] {
					escape(id, id.Pos())
				}
				return true
			})
		default:
			if x == nil {
				return
			}
			ast.Inspect(x, func(y ast.Node) bool {
				if y == x {
					return true
				}
				switch y.(type) {
				case *ast.Ident, *ast.ParenExpr, *ast.SelectorExpr, *ast.IndexExpr,
					*ast.SliceExpr, *ast.BinaryExpr, *ast.UnaryExpr, *ast.CallExpr,
					*ast.AssignStmt, *ast.FuncLit, *ast.CompositeLit, *ast.SendStmt,
					*ast.ReturnStmt, *ast.GoStmt, *ast.DeferStmt, *ast.RangeStmt:
					scan(y)
					return false
				}
				return true
			})
		}
	}
	scan(n)
}

// scanCall classifies a call's effect on live tracked arguments.
func (a *poolAnalysis) scanCall(v *ast.CallExpr, s posSet, exempt map[*ast.Ident]bool,
	live func(ast.Expr) *poolSite, escape func(ast.Expr, token.Pos), silent func(ast.Expr),
	scan func(ast.Node)) {
	if target, ps := a.putTarget(v); ps != nil {
		// Applied by the put pass; the receiver and target are benign.
		for _, arg := range v.Args {
			if arg != target {
				scan(arg)
			}
		}
		return
	}
	if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
		if b, isBuiltin := a.p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "append":
				for i, arg := range v.Args {
					site := live(arg)
					if site == nil {
						scan(arg)
						continue
					}
					switch {
					case i == 0:
						// Non-self base (self-append was exempted by the
						// assignment pre-pass): the result aliases the
						// container — end tracking silently.
						silent(arg)
					case v.Ellipsis.IsValid() && i == len(v.Args)-1:
						// Spread: the elements copy out; the container
						// stays owned.
					default:
						escape(arg, arg.Pos()) // stored as an element
					}
				}
			default:
				// len/cap/copy/clear/delete/min/max/panic/...: reads.
				for _, arg := range v.Args {
					if live(arg) == nil {
						scan(arg)
					}
				}
			}
			return
		}
	}
	if tv, ok := a.p.Info.Types[v.Fun]; ok && tv.IsType() {
		// Conversion: the result aliases the container.
		for _, arg := range v.Args {
			if live(arg) != nil {
				silent(arg)
			} else {
				scan(arg)
			}
		}
		return
	}
	scan(v.Fun) // dynamic callee exprs / closure literals may capture
	fn := calleeFunc(a.p.Info, v)
	for i, arg := range v.Args {
		site := live(arg)
		if site == nil {
			scan(arg)
			continue
		}
		switch a.argVerdict(fn, i, v, site) {
		case ParamReleased:
			// The callee puts it for us: credit the Put here.
			delete(s, "l|"+site.id)
			s["d|"+site.id] = v.Pos()
		case ParamKept:
			silent(arg) // ownership handed to the callee
		default:
			// Loan: the callee borrows it, the Put is still owed here.
		}
	}
}

// argVerdict consults the callee's resolved parameter action for a
// tracked container passed as argument i. Returns "" (loan) when the
// callee is dynamic, external, variadic at i, or the container's
// element type is not registered.
func (a *poolAnalysis) argVerdict(fn *types.Func, i int, call *ast.CallExpr, site *poolSite) string {
	if fn == nil || a.ip == nil || site.tkey == "" {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params() == nil {
		return ""
	}
	if call.Ellipsis.IsValid() || (sig.Variadic() && i >= sig.Params().Len()-1) || i >= sig.Params().Len() {
		return ""
	}
	return a.ip.ParamResolved(cfg.FuncID(fn), i, site.tkey)
}

// checkNode reports node-level findings against the state holding just
// before the node executes.
func (a *poolAnalysis) checkNode(n ast.Node, before posSet) {
	puts := a.putsIn(n)
	exempt := map[*ast.Ident]bool{}
	for _, pe := range puts {
		exempt[pe.ident] = true
	}
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, l := range as.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				exempt[id] = true // definitions and reassignments, not uses
			}
		}
	}
	for _, pe := range puts {
		id := pe.site.id
		if p, dead := before["d|"+id]; dead {
			a.reportOnce(fmt.Sprintf("dp|%s|%d", id, pe.pos), poolDoublePut, pe.pos, fmt.Sprintf(
				"%s from %s (line %d) was already returned to the pool at line %d — a double Put hands one container to two owners",
				pe.site.desc, pe.site.from, a.line(pe.site.pos), a.line(p)))
			continue
		}
		if p, pending := before["f|"+id]; pending && !pe.deferred {
			a.reportOnce(fmt.Sprintf("dp|%s|%d", id, pe.pos), poolDoublePut, pe.pos, fmt.Sprintf(
				"%s from %s (line %d) is returned to the pool here and again by the deferred Put at line %d",
				pe.site.desc, pe.site.from, a.line(pe.site.pos), a.line(p)))
			continue
		}
		if p, escaped := before["e|"+id]; escaped {
			a.reportOnce(fmt.Sprintf("ep|%s|%d", id, pe.pos), poolEscapePastPut, pe.pos, fmt.Sprintf(
				"%s from %s (line %d) escaped to a new owner at line %d but is returned to the pool here — the pool may recycle it under that owner",
				pe.site.desc, pe.site.from, a.line(pe.site.pos), a.line(p)))
		}
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false // closure bodies run later, under a different state
		}
		id, ok := x.(*ast.Ident)
		if !ok || exempt[id] {
			return true
		}
		obj := a.p.Info.Uses[id]
		if obj == nil {
			return true
		}
		site, tracked := a.byObj[obj]
		if !tracked {
			return true
		}
		if p, dead := before["d|"+site.id]; dead {
			a.reportOnce(fmt.Sprintf("up|%s|%d", site.id, id.Pos()), poolUseAfterPut, id.Pos(), fmt.Sprintf(
				"%s from %s (line %d) is used here after the Put at line %d returned it to the pool — it may already be handed out again",
				site.desc, site.from, a.line(site.pos), a.line(p)))
		}
		return true
	})
}

// checkEdge reports live containers crossing a return or panic edge.
func (a *poolAnalysis) checkEdge(g *cfg.Graph, blk *cfg.Block, e cfg.Edge, out posSet) {
	if e.Kind != cfg.Return && e.Kind != cfg.Panic {
		return
	}
	exit := p_returnWord(e.Kind)
	line := a.p.Fset.Position(returnPos(blk, g)).Line
	if e.Kind == cfg.Panic && len(blk.Nodes) > 0 {
		line = a.p.Fset.Position(blk.Nodes[len(blk.Nodes)-1].Pos()).Line
	}
	for _, key := range sortedKeys(out) {
		if !strings.HasPrefix(key, "l|") {
			continue
		}
		id := key[2:]
		site := a.sites[id]
		if site == nil {
			continue
		}
		a.reportOnce("mp|"+id, poolMissingPut, site.pos, fmt.Sprintf(
			"%s from %s acquired here does not reach Put (or an ownership handoff) on the path that %ss at line %d",
			site.desc, site.from, exit, line))
	}
}

// refine kills facts along branches that prove the container nil: the
// error contract of producer calls (`b, ok, err := next(); if err != nil`
// means b is nil on the error branch), the ok contract (`if !ok` means
// the stream ended and b is nil), and explicit nil checks.
func (a *poolAnalysis) refine(blk *cfg.Block, e cfg.Edge, s posSet) posSet {
	if len(blk.Nodes) == 0 || (e.Kind != cfg.True && e.Kind != cfg.False) {
		return s
	}
	cond, ok := blk.Nodes[len(blk.Nodes)-1].(ast.Expr)
	if !ok {
		return s
	}
	killCompanion := func(obj types.Object) {
		for _, site := range a.okObjs[obj] {
			a.killAll(s, site.id)
		}
	}
	switch x := ast.Unparen(cond).(type) {
	case *ast.Ident:
		// `if ok { ... }`: on the false edge the producer returned
		// nothing — the companion containers are nil.
		if obj := a.objOf(x); obj != nil && e.Kind == cfg.False {
			killCompanion(obj)
		}
		return s
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			if obj := a.objOf(x.X); obj != nil && e.Kind == cfg.True {
				killCompanion(obj)
			}
		}
		return s
	case *ast.BinaryExpr:
		if x.Op != token.EQL && x.Op != token.NEQ {
			return s
		}
		var other ast.Expr
		if isNilIdent(x.Y) {
			other = x.X
		} else if isNilIdent(x.X) {
			other = x.Y
		} else {
			return s
		}
		obj := a.objOf(other)
		if obj == nil {
			return s
		}
		nilOnTrue := x.Op == token.EQL
		onNilEdge := (nilOnTrue && e.Kind == cfg.True) || (!nilOnTrue && e.Kind == cfg.False)
		if sites, isErr := a.errObjs[obj]; isErr {
			// err non-nil ⇒ container nil ⇒ nothing to put on that edge.
			if !onNilEdge {
				for _, site := range sites {
					a.killAll(s, site.id)
				}
			}
			return s
		}
		if site, tracked := a.byObj[obj]; tracked && onNilEdge {
			a.killAll(s, site.id) // container proven nil
		}
	}
	return s
}
