package main

import (
	"fmt"
	"go/token"
)

// ruleWaitAttrib enforces that every blocking operation reachable from
// an operator task root — channel sends/receives, enumerated blocking
// externals like file reads and WaitGroup waits, and (when LockWaits is
// on) mutex acquisition — is covered by wait attribution: either a
// `defer ctx.AddWait(...)(...)`-style deferred stopwatch active at the
// site, or an AddWait call that dominates it on every non-loop path.
// Unattributed blocking skews the perf harness's wait-time breakdown:
// the stall happens, the operator's span never sees it, and the
// regression gate compares against a hole.
//
// The walk descends only through UNattributed call edges: if the caller
// wraps the whole call in attribution, everything beneath it is already
// timed and charged to the right span. `go`-launched work is not
// followed (the new goroutine's waits are its own task's to attribute).
func ruleWaitAttrib() *Rule {
	return &Rule{
		Name:   "wait-attrib",
		Doc:    "blocking operations reachable from operator tasks must route through wait attribution",
		Interp: runWaitAttrib,
	}
}

func runWaitAttrib(c *Config, ip *Interp, report func(token.Position, string)) {
	reported := map[string]bool{}
	emit := func(p SitePos, msg string) {
		key := fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
		if reported[key] {
			return
		}
		reported[key] = true
		report(ip.Position(p), msg)
	}
	for _, root := range c.WaitRoots {
		rootID := root.ID()
		if ip.Summary(rootID) == nil {
			continue
		}
		visited := map[string]bool{}
		var visit func(id string, chain []string)
		visit = func(id string, chain []string) {
			if visited[id] {
				return
			}
			visited[id] = true
			s := ip.Summary(id)
			if s == nil {
				return
			}
			chain = append(chain, id)
			via := chainSuffix(chain)
			for _, b := range s.Blocks {
				if b.Attributed {
					continue
				}
				emit(b.P, fmt.Sprintf("%s reachable from operator task %s is not covered by wait attribution%s (route through TaskContext.AddWait)",
					b.What, shortID(rootID), via))
			}
			for _, e := range s.Edges {
				if e.Go || e.Attributed {
					continue
				}
				if ip.edgeSuppressed("wait-attrib", e.P) {
					continue // reasoned barrier: callee's waits accepted as untracked
				}
				switch e.Kind {
				case "static", "method", "ref":
					visit(e.Callees[0], chain)
				case "interface":
					for _, callee := range e.Callees {
						visit(callee, chain)
					}
				}
				// external blockers already surfaced as Block sites in
				// this summary; dynamic calls are a documented recall gap.
			}
		}
		visit(rootID, nil)
	}
}
