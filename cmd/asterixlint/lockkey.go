package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared lock-identity layer under the flow-sensitive
// lock rules (lock-order, defer-unlock): it classifies sync.Mutex /
// sync.RWMutex method calls and names the mutex they operate on.
//
// A lock's identity is (package, receiver type, field name) for struct
// fields — `t.mu.Lock()` on *lsm.Tree is "asterix/internal/lsm.Tree.mu"
// regardless of which Tree instance is locked — (package, var) for
// package-level mutexes, and a function-local marker for everything
// else. Only the first two are "global": they participate in the
// repo-wide acquisition-order graph. Collapsing instances onto their
// field is the RacerD-style abstraction that makes cross-package
// ordering tractable without alias analysis; hand-over-hand locking of
// two instances of the same field is its known blind spot (see
// docs/STATIC_ANALYSIS.md).

// lockKey names one mutex.
type lockKey struct {
	id     string
	global bool
}

// lockEvent is one mutex method call found in a node.
type lockEvent struct {
	method string // Lock, RLock, Unlock, RUnlock, TryLock, TryRLock
	key    lockKey
	pos    token.Pos
}

// syncMutexMethod resolves call to a sync.Mutex/RWMutex method and the
// expression the method is invoked on ("" when it is not one).
func syncMutexMethod(info *types.Info, call *ast.CallExpr) (method string, on ast.Expr) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", nil
	}
	rt := namedType(sig.Recv().Type())
	if rt == nil || (rt.Obj().Name() != "Mutex" && rt.Obj().Name() != "RWMutex") {
		return "", nil
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return "", nil
		}
		return fn.Name(), sel.X
	}
	return "", nil
}

// isSyncMutexType reports whether t (through pointers) is sync.Mutex or
// sync.RWMutex.
func isSyncMutexType(t types.Type) bool {
	return isPkgType(t, "sync", "Mutex") || isPkgType(t, "sync", "RWMutex")
}

// classifyLock names the mutex behind expression e (the receiver of a
// mutex method call).
func classifyLock(p *Package, e ast.Expr) (lockKey, bool) {
	e = ast.Unparen(e)
	t := p.Info.TypeOf(e)
	if t != nil && !isSyncMutexType(t) {
		// Promoted method: `t.Lock()` with the mutex embedded in t's
		// struct. Name the embedded field.
		owner := namedType(t)
		if owner == nil || owner.Obj().Pkg() == nil {
			return lockKey{}, false
		}
		st, ok := owner.Underlying().(*types.Struct)
		if !ok {
			return lockKey{}, false
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Embedded() && isSyncMutexType(f.Type()) {
				return lockKey{
					id:     owner.Obj().Pkg().Path() + "." + owner.Obj().Name() + "." + f.Name(),
					global: true,
				}, true
			}
		}
		return lockKey{}, false
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			owner := namedType(p.Info.TypeOf(x.X))
			if owner == nil || owner.Obj().Pkg() == nil {
				return lockKey{}, false
			}
			return lockKey{
				id:     owner.Obj().Pkg().Path() + "." + owner.Obj().Name() + "." + x.Sel.Name,
				global: true,
			}, true
		}
		// Qualified package-level var: pkg.mu.
		if v, ok := p.Info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return lockKey{id: v.Pkg().Path() + "." + v.Name(), global: true}, true
		}
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil {
			obj = p.Info.Defs[x]
		}
		if v, ok := obj.(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return lockKey{id: v.Pkg().Path() + "." + v.Name(), global: true}, true
			}
			return lockKey{id: "local:" + v.Name() + "@" + p.Fset.Position(v.Pos()).String(), global: false}, true
		}
	}
	return lockKey{}, false
}

// lockCalls finds the mutex method calls in a node, in source order,
// without entering function-literal bodies (a literal runs on its own
// stack and is analyzed as its own function).
func lockCalls(p *Package, n ast.Node) []lockEvent {
	var evs []lockEvent
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, on := syncMutexMethod(p.Info, call)
		if method == "" {
			return true
		}
		if key, ok := classifyLock(p, on); ok {
			evs = append(evs, lockEvent{method: method, key: key, pos: call.Pos()})
		}
		return true
	})
	return evs
}

// deferredUnlocks finds Unlock/RUnlock calls a defer statement schedules
// for function exit — directly (`defer mu.Unlock()`) or inside a
// deferred closure (`defer func() { ...; mu.Unlock() }()`).
func deferredUnlocks(p *Package, d *ast.DeferStmt) []lockEvent {
	var evs []lockEvent
	ast.Inspect(d.Call, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, on := syncMutexMethod(p.Info, call)
		if method != "Unlock" && method != "RUnlock" {
			return true
		}
		if key, ok := classifyLock(p, on); ok {
			evs = append(evs, lockEvent{method: method, key: key, pos: call.Pos()})
		}
		return true
	})
	return evs
}

// condTryLock inspects a branch condition for a TryLock/TryRLock guard
// and returns its lock event plus the edge polarity: acquiredOnTrue is
// false for the `if !mu.TryLock()` shape.
func condTryLock(p *Package, cond ast.Expr) (ev lockEvent, acquiredOnTrue, ok bool) {
	acquiredOnTrue = true
	e := ast.Unparen(cond)
	for {
		u, isNot := e.(*ast.UnaryExpr)
		if !isNot || u.Op != token.NOT {
			break
		}
		acquiredOnTrue = !acquiredOnTrue
		e = ast.Unparen(u.X)
	}
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return lockEvent{}, false, false
	}
	method, on := syncMutexMethod(p.Info, call)
	if method != "TryLock" && method != "TryRLock" {
		return lockEvent{}, false, false
	}
	key, classified := classifyLock(p, on)
	if !classified {
		return lockEvent{}, false, false
	}
	return lockEvent{method: method, key: key, pos: call.Pos()}, acquiredOnTrue, true
}
