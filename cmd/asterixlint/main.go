// Command asterixlint is the repository's project-specific static
// analyzer: a stdlib-only (go/parser + go/types) multi-rule linter that
// machine-checks the concurrency and resource invariants this codebase
// relies on. See docs/STATIC_ANALYSIS.md for the rule catalogue and the
// //lint:ignore suppression syntax.
//
// Usage:
//
//	asterixlint [-rules r1,r2] [-v] [packages...]
//
// Package patterns are directories or go-style "./..." trees. Exit code
// is 1 when any diagnostic is reported, 2 on load/type-check failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	var (
		rulesFlag = flag.String("rules", "", "comma-separated rule names to run (default: all)")
		verbose   = flag.Bool("v", false, "print packages as they are checked")
		listFlag  = flag.Bool("list", false, "list rules and exit")
	)
	flag.Parse()

	rules := AllRules()
	if *listFlag {
		for _, r := range rules {
			fmt.Printf("%-12s %s\n", r.Name, r.Doc)
		}
		return
	}
	if *rulesFlag != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*rulesFlag, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*Rule
		for _, r := range rules {
			if want[r.Name] {
				sel = append(sel, r)
				delete(want, r.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "asterixlint: unknown rule %q\n", name)
			os.Exit(2)
		}
		rules = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "asterixlint:", err)
		os.Exit(2)
	}
	dirs, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asterixlint:", err)
		os.Exit(2)
	}

	cfg := DefaultConfig()
	found := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "asterixlint:", err)
			os.Exit(2)
		}
		if *verbose {
			fmt.Fprintln(os.Stderr, "checking", pkg.Path)
		}
		for _, d := range RunRules(cfg, pkg, rules) {
			fmt.Println(d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "asterixlint: %d issue(s)\n", found)
		os.Exit(1)
	}
}
