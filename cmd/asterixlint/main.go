// Command asterixlint is the repository's project-specific static
// analyzer: a stdlib-only (go/parser + go/types) multi-rule linter that
// machine-checks the concurrency and resource invariants this codebase
// relies on. See docs/STATIC_ANALYSIS.md for the rule catalogue and the
// //lint:ignore suppression syntax.
//
// Usage:
//
//	asterixlint [-rules r1,r2] [-json] [-v] [-stats] [-summary-cache dir] [-max-wall d] [-strict-suppressions] [packages...]
//
// Package patterns are directories or go-style "./..." trees. Exit code
// is 1 when any diagnostic is reported, 2 on load/type-check failure,
// and 3 when -max-wall is set and the run exceeds it. Stale
// //lint:ignore directives (rule "stale-suppression") warn by default;
// -strict-suppressions makes them fail too.
//
// -summary-cache names a directory for the interprocedural summary
// cache: the table of per-function summaries is keyed on the hash of
// every loaded Go file plus the config, so an unchanged tree restores
// instead of re-extracting. -stats prints per-rule finding counts and
// wall time to stderr; -max-wall turns slow lint into a hard failure so
// CI notices when the engine regresses.
//
// With -json, findings are emitted one JSON object per line
// ({"file","line","col","rule","msg"}) for machine consumers; the
// GitHub Actions problem matcher in .github/asterixlint-matcher.json
// consumes the default text format to produce inline PR annotations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// jsonDiagnostic is the -json wire shape, one object per line.
type jsonDiagnostic struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func main() {
	var (
		rulesFlag = flag.String("rules", "", "comma-separated rule names to run (default: all)")
		verbose   = flag.Bool("v", false, "print packages as they are checked")
		listFlag  = flag.Bool("list", false, "list rules and exit")
		jsonFlag  = flag.Bool("json", false, "emit findings as JSON, one object per line")
		cacheFlag = flag.String("summary-cache", "", "directory for the interprocedural summary cache")
		statsFlag  = flag.Bool("stats", false, "print per-rule finding counts and wall time to stderr")
		wallFlag   = flag.Duration("max-wall", 0, "fail (exit 3) when the run exceeds this wall time")
		strictFlag = flag.Bool("strict-suppressions", false, "fail (exit 1) on stale //lint:ignore directives instead of warning")
	)
	flag.Parse()
	start := time.Now()

	rules := AllRules()
	if *listFlag {
		for _, r := range rules {
			fmt.Printf("%-14s %s\n", r.Name, r.Doc)
		}
		return
	}
	if *rulesFlag != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*rulesFlag, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*Rule
		for _, r := range rules {
			if want[r.Name] {
				sel = append(sel, r)
				delete(want, r.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "asterixlint: unknown rule %q\n", name)
			os.Exit(2)
		}
		rules = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "asterixlint:", err)
		os.Exit(2)
	}
	dirs, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asterixlint:", err)
		os.Exit(2)
	}

	// All packages feed one Runner so cross-package rules (lock-order)
	// see the whole acquisition graph before Finish reports on it.
	runner := NewRunner(DefaultConfig(), loader.Fset(), rules)
	runner.ModRoot = loader.ModRoot
	runner.CacheDir = *cacheFlag
	// The stale audit needs every rule live: under a -rules subset a
	// directive for an unselected rule would be falsely called stale.
	runner.ReportStale = *rulesFlag == ""
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "asterixlint:", err)
			os.Exit(2)
		}
		if *verbose {
			fmt.Fprintln(os.Stderr, "checking", pkg.Path)
		}
		runner.Package(pkg)
	}

	diags := runner.Finish()
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *jsonFlag {
			if err := enc.Encode(jsonDiagnostic{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Rule: d.Rule, Msg: d.Msg,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "asterixlint:", err)
				os.Exit(2)
			}
			continue
		}
		fmt.Println(d)
	}
	elapsed := time.Since(start)
	if *statsFlag {
		stats := runner.Stats()
		var names []string
		for _, r := range rules {
			names = append(names, r.Name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "asterixlint: rule %-14s %d finding(s)\n", name, stats[name])
		}
		cached := ""
		if runner.Interp != nil && runner.Interp.FromCache {
			cached = " (summaries from cache)"
		}
		fmt.Fprintf(os.Stderr, "asterixlint: wall %s%s\n", elapsed.Round(time.Millisecond), cached)
	}
	if *wallFlag > 0 && elapsed > *wallFlag {
		fmt.Fprintf(os.Stderr, "asterixlint: wall time %s exceeds -max-wall %s\n",
			elapsed.Round(time.Millisecond), *wallFlag)
		os.Exit(3)
	}
	// Stale suppressions warn by default; -strict-suppressions promotes
	// them to failures. Every other finding is always a failure.
	hard, stale := 0, 0
	for _, d := range diags {
		if d.Rule == "stale-suppression" {
			stale++
		} else {
			hard++
		}
	}
	if hard > 0 || (*strictFlag && stale > 0) {
		fmt.Fprintf(os.Stderr, "asterixlint: %d issue(s)\n", len(diags))
		os.Exit(1)
	}
	if stale > 0 {
		fmt.Fprintf(os.Stderr, "asterixlint: %d stale suppression(s) (warning; -strict-suppressions to fail)\n", stale)
	}
}
