package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Config names the project-specific types and packages the rules key on.
// Tests override the paths to point at fixture packages.
type Config struct {
	// ObsPkgPath is the package whose exported handle types promise
	// nil-safe methods.
	ObsPkgPath string
	// ObsHandles are the handle type names within ObsPkgPath.
	ObsHandles []string
	// TuplePkgPath/TupleType name the executor tuple type whose frames
	// must not be mutated after being sent over a channel.
	TuplePkgPath string
	TupleType    string
	// ErrPkgs are package paths (exact, or prefix when ending in "/")
	// whose discarded error returns are flagged.
	ErrPkgs []string
	// FaultPkgPath is the fault-injection registry; production code may
	// only call the guarded probe helpers named in FaultGuarded from it.
	FaultPkgPath string
	FaultGuarded []string
	// OperatorPkgs are the runtime packages whose code must size working
	// memory through governor grants; MemBudgetField is the legacy static
	// knob whose reads are flagged there.
	OperatorPkgs   []string
	MemBudgetField string
	// Resources registers acquire/release pairs for the resource-leak
	// rule: every value produced by an acquire must reach one of its
	// releases on all paths out of the acquiring function.
	Resources []ResourceSpec
	// Pools registers buffer pools for the pool-safety rule family: a
	// container drawn from a pool's Get must reach its Put on every
	// path, must not be touched after the Put, put twice, or recycled
	// after its ownership escaped.
	Pools []PoolSpec

	// HotRoots are the per-tuple kernels the hot-alloc rule requires to
	// be transitively allocation-free (see docs/STATIC_ANALYSIS.md for
	// the registration recipe).
	HotRoots []FuncRef
	// WaitRoots are operator task entry points: blocking operations
	// reachable from them must be covered by wait attribution.
	WaitRoots []FuncRef
	// WaitFuncs are the attribution sinks (TaskContext.AddWait and the
	// span-level AddWait) that satisfy the wait-attrib rule.
	WaitFuncs []FuncRef
	// NonAllocExt whitelists external functions the hot-alloc rule may
	// assume allocation-free; everything external is otherwise
	// conservatively treated as allocating. An entry ending in "." is a
	// prefix: "sync/atomic." covers the whole package, "sync.(Mutex)."
	// every method of the type.
	NonAllocExt []string
	// BlockExt enumerates external functions that block (file I/O,
	// sleeps, waits). Unlike allocation, blocking is whitelist-by-
	// default: only enumerated callees count, because "any external
	// call may block" would drown the signal.
	BlockExt []string
	// LockWaits extends wait-attrib to sync.Mutex/RWMutex Lock calls.
	// Off by default: the repo's short-critical-section mutexes are the
	// lock-order/defer-unlock rules' territory, and the long waits
	// (admission, txn locks) already attribute internally.
	LockWaits bool
}

// DefaultConfig is the configuration for this repository.
func DefaultConfig() *Config {
	return &Config{
		ObsPkgPath:   "asterix/internal/obs",
		ObsHandles:   []string{"Span", "Counter", "Gauge", "Histogram", "Registry"},
		TuplePkgPath: "asterix/internal/hyracks",
		TupleType:    "Tuple",
		ErrPkgs: []string{
			"io", "os", "encoding/",
			"asterix/internal/storage", "asterix/internal/txn",
		},
		FaultPkgPath: "asterix/internal/fault",
		FaultGuarded: []string{"Hit", "HitTag", "Tear", "TearTag", "Armed", "Hits", "Fired", "Snapshot", "BindMetrics", "Int63n"},
		OperatorPkgs: []string{
			"asterix/internal/hyracks", "asterix/internal/algebricks",
		},
		MemBudgetField: "MemBudget",
		Resources: []ResourceSpec{
			{
				Pkg: "asterix/internal/mem", Recv: "Governor", Func: "Reserve", Result: 0,
				Type: "Grant", Desc: "memory grant",
				Releases: []ReleaseSpec{
					{Pkg: "asterix/internal/mem", Recv: "Grant", Func: "Release", Arg: -1},
				},
			},
			{
				Pkg: "asterix/internal/mem", Recv: "Governor", Func: "AdmitJob", Result: 0,
				Type: "JobGrant", Desc: "job admission grant",
				Releases: []ReleaseSpec{
					{Pkg: "asterix/internal/mem", Recv: "JobGrant", Func: "Release", Arg: -1},
				},
			},
			{
				Pkg: "asterix/internal/storage", Recv: "BufferCache", Func: "Pin", Result: 0,
				Type: "Page", Desc: "pinned page",
				Releases: []ReleaseSpec{
					{Pkg: "asterix/internal/storage", Recv: "BufferCache", Func: "Unpin", Arg: 0},
				},
			},
			{
				Pkg: "asterix/internal/storage", Recv: "BufferCache", Func: "NewPage", Result: 0,
				Type: "Page", Desc: "pinned page",
				Releases: []ReleaseSpec{
					{Pkg: "asterix/internal/storage", Recv: "BufferCache", Func: "Unpin", Arg: 0},
				},
			},
			{
				// snapshot returns []*diskComponent — no named resource
				// type, so helper parameters are not classified and call
				// sites keep the blanket ownership-transfer kill.
				Pkg: "asterix/internal/lsm", Recv: "Tree", Func: "snapshot", Result: 0,
				Desc: "component snapshot",
				Releases: []ReleaseSpec{
					{Pkg: "asterix/internal/lsm", Recv: "Tree", Func: "release", Arg: 0},
				},
			},
			{
				Pkg: "asterix/internal/txn", Recv: "Manager", Func: "Begin", Result: 0,
				Type: "Txn", Desc: "transaction",
				Releases: []ReleaseSpec{
					{Pkg: "asterix/internal/txn", Recv: "Txn", Func: "Commit", Arg: -1},
					{Pkg: "asterix/internal/txn", Recv: "Txn", Func: "Abort", Arg: -1},
				},
			},
			{
				Pkg: "os", Func: "Open", Result: 0,
				Type: "File", Desc: "open file",
				Releases: []ReleaseSpec{
					{Pkg: "os", Recv: "File", Func: "Close", Arg: -1},
				},
			},
			{
				Pkg: "os", Func: "Create", Result: 0,
				Type: "File", Desc: "open file",
				Releases: []ReleaseSpec{
					{Pkg: "os", Recv: "File", Func: "Close", Arg: -1},
				},
			},
			{
				Pkg: "os", Func: "OpenFile", Result: 0,
				Type: "File", Desc: "open file",
				Releases: []ReleaseSpec{
					{Pkg: "os", Recv: "File", Func: "Close", Arg: -1},
				},
			},
		},
		Pools: []PoolSpec{
			{
				// Exchange frame containers ([]Tuple): connWriter batches,
				// merge-input output frames, wire decode. Unnamed element
				// type, so call arguments stay loans.
				Pkg: "asterix/internal/hyracks", Recv: "FramePool",
				Get: "Get", Put: "Put",
				Desc: "pooled frame",
			},
			{
				// Spill-record scratch tuples: group-by partial records,
				// grace-join probe read-back. The named Tuple element lets
				// helper parameters resolve kept/released.
				Pkg: "asterix/internal/hyracks", Recv: "TuplePool",
				Get: "Get", Put: "Put",
				ElemPkg: "asterix/internal/hyracks", ElemType: "Tuple",
				Desc: "pooled tuple",
			},
			{
				// Run-file encode/decode scratch ([]byte).
				Pkg: "asterix/internal/hyracks", Recv: "BytePool",
				Get: "Get", Put: "Put",
				Desc: "pooled byte buffer",
			},
		},
		HotRoots: []FuncRef{
			// ADM comparator/serde kernels: run once per tuple column.
			{Pkg: "asterix/internal/adm", Func: "Compare"},
			{Pkg: "asterix/internal/adm", Func: "Equal"},
			{Pkg: "asterix/internal/adm", Func: "Hash64"},
			{Pkg: "asterix/internal/adm", Func: "Encode"},
			// Hyracks per-tuple operator kernels.
			{Pkg: "asterix/internal/hyracks", Recv: "Comparator", Func: "Compare"},
			{Pkg: "asterix/internal/hyracks", Func: "HashColumns"},
			{Pkg: "asterix/internal/hyracks", Recv: "Tuple", Func: "EstimateSize"},
			{Pkg: "asterix/internal/hyracks", Recv: "Tuple", Func: "EstimateSizeShallow"},
			{Pkg: "asterix/internal/hyracks", Func: "keysEqual"},
			{Pkg: "asterix/internal/hyracks", Func: "hasNullKey"},
			{Pkg: "asterix/internal/hyracks", Recv: "groupTable", Func: "probe"},
			// Storage iterator Next paths.
			{Pkg: "asterix/internal/btree", Recv: "Iterator", Func: "Next"},
			{Pkg: "asterix/internal/btree", Recv: "Iterator", Func: "Valid"},
			{Pkg: "asterix/internal/lsm", Recv: "Tree", Func: "Scan"},
		},
		WaitRoots: []FuncRef{
			{Pkg: "asterix/internal/hyracks", Func: "runSort"},
			{Pkg: "asterix/internal/hyracks", Func: "runGroupBy"},
			{Pkg: "asterix/internal/hyracks", Func: "runHashJoin"},
			{Pkg: "asterix/internal/hyracks", Func: "NewNestedLoopJoin"},
		},
		WaitFuncs: []FuncRef{
			{Pkg: "asterix/internal/hyracks", Recv: "TaskContext", Func: "AddWait"},
			{Pkg: "asterix/internal/obs", Recv: "Span", Func: "AddWait"},
		},
		NonAllocExt: []string{
			"bytes.Compare", "bytes.Equal", "bytes.HasPrefix",
			"time.Now", "time.Since",
			// Endian codecs and varints write into caller buffers; the
			// Append* forms grow amortized like self-append.
			"encoding/binary.AppendUvarint", "encoding/binary.AppendVarint",
			"encoding/binary.PutUvarint", "encoding/binary.PutVarint",
			"encoding/binary.ReadUvarint",
			"encoding/binary.Uvarint", "encoding/binary.Varint",
			"encoding/binary.(bigEndian).", "encoding/binary.(littleEndian).",
			"bufio.(Writer).Write", "bufio.(Writer).WriteByte",
			"math.Float64bits", "math.Float64frombits",
			"sort.SearchInts", "sort.Search",
			// Lock/unlock and atomics never allocate; whether a Lock may
			// *block* in a hot path is the wait-attrib rule's LockWaits
			// knob, not an allocation question.
			"sync.(Mutex).", "sync.(RWMutex).", "sync/atomic.",
		},
		BlockExt: []string{
			"os.(File).Read", "os.(File).ReadAt", "os.(File).Write",
			"os.(File).WriteAt", "os.(File).Sync",
			"io.ReadFull", "io.Copy", "io.ReadAll",
			"bufio.(Reader).Read", "bufio.(Reader).ReadByte",
			"bufio.(Writer).Flush", "bufio.(Writer).Write",
			"encoding/binary.ReadUvarint",
			"time.Sleep",
			"sync.(WaitGroup).Wait", "sync.(Cond).Wait",
			// Transport blocking calls (internal/net): the conn methods
			// are interface dispatch — the concrete net.TCPConn lives
			// outside the module — so they match by declared symbol.
			// An unattributed network wait on an operator task path is
			// a lint error; the executor attributes the whole Send call
			// as WaitNet, which covers everything beneath it.
			"net.(Conn).Read", "net.(Conn).Write",
			"net.(Listener).Accept", "net.DialTimeout",
		},
	}
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Rule is one analyzer check. Run is invoked once per package; Finish,
// when set, runs once after every package has been scanned — it is how
// repo-global analyses (lock-order) report on state accumulated across
// packages. The positions a Finish reports must come from the shared
// loader FileSet. Interp, when set, runs after every package has been
// scanned with the interprocedural summary table; its findings report
// by token.Position because cached summaries have no live token.Pos.
type Rule struct {
	Name   string
	Doc    string
	Run    func(c *Config, p *Package, report func(token.Pos, string))
	Finish func(c *Config, fset *token.FileSet, report func(token.Pos, string))
	Interp func(c *Config, ip *Interp, report func(token.Position, string))
}

// AllRules returns every rule in stable order. Rules carrying
// cross-package state are built fresh on each call, so independent
// runs (and tests) do not share graphs.
func AllRules() []*Rule {
	rules := []*Rule{
		ruleObsNil(),
		ruleLockHeld(),
		ruleGoLifecycle(),
		ruleErrDiscard(),
		ruleFrameAlias(),
		ruleFaultGate(),
		ruleMemGrant(),
		ruleDeferUnlock(),
		ruleLockOrder(),
		ruleResourceLeak(),
		ruleCtxFlow(),
		ruleHotAlloc(),
		ruleWaitAttrib(),
	}
	return append(rules, poolSafetyRules()...)
}

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)(?:\s+(.*))?$`)

// suppressions maps file:line to the set of rule names ignored there. A
// directive covers its own line and the next line, so it works both as a
// trailing comment and on the line above the flagged statement. Stacked
// directives chain: when the next line holds another lint:ignore
// directive, coverage extends past it, so several single-rule
// directives above one statement all reach the statement — previously
// only the bottom directive of a stack applied, and a line carrying
// findings from two rules could not be suppressed one rule per
// directive line.
type suppressions map[string]map[string]bool

// supDirective is one reasoned lint:ignore directive, kept for the
// stale-suppression audit: a directive that suppresses nothing in the
// whole run is itself reported.
type supDirective struct {
	rules []string
	keys  []string // the "file:line" keys the directive covers
	pos   token.Position
}

func collectSuppressions(p *Package, report func(token.Pos, string)) (suppressions, []supDirective) {
	sup := suppressions{}
	var out []supDirective
	for _, f := range p.Files {
		// Lines occupied by a lint:ignore directive, for stack chaining.
		directiveLines := map[string]map[int]bool{}
		type directive struct {
			rules    []string
			filename string
			line     int
			pos      token.Position
		}
		var directives []directive
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					report(c.Pos(), "lint:ignore directive is missing a reason (//lint:ignore rule reason)")
					continue
				}
				pos := p.Fset.Position(c.Pos())
				if directiveLines[pos.Filename] == nil {
					directiveLines[pos.Filename] = map[int]bool{}
				}
				directiveLines[pos.Filename][pos.Line] = true
				directives = append(directives, directive{
					rules:    strings.Split(m[1], ","),
					filename: pos.Filename,
					line:     pos.Line,
					pos:      pos,
				})
			}
		}
		for _, d := range directives {
			// Own line, then chain down through any stacked directives
			// to the first non-directive line.
			cover := []int{d.line}
			next := d.line + 1
			for directiveLines[d.filename][next] {
				cover = append(cover, next)
				next++
			}
			cover = append(cover, next)
			sd := supDirective{rules: d.rules, pos: d.pos}
			for _, line := range cover {
				sd.keys = append(sd.keys, fmt.Sprintf("%s:%d", d.filename, line))
			}
			out = append(out, sd)
			for _, rule := range d.rules {
				for _, key := range sd.keys {
					if sup[key] == nil {
						sup[key] = map[string]bool{}
					}
					sup[key][rule] = true
				}
			}
		}
	}
	return sup, out
}

// Runner drives the rules over any number of packages, accumulating
// suppressions and diagnostics globally so that cross-package Finish
// hooks are filtered by the same directives as per-package findings.
type Runner struct {
	c     *Config
	fset  *token.FileSet
	rules []*Rule
	sup   suppressions
	diags []Diagnostic
	pkgs  []*Package
	stats map[string]int

	// ModRoot anchors cached summary positions; CacheDir, when set,
	// enables the summary cache. Both are set by main before Finish
	// (tests leave them empty: absolute positions, no cache).
	ModRoot  string
	CacheDir string
	// Interp is the summary table built by Finish; exposed for -stats.
	Interp *Interp

	// ReportStale enables the stale-suppression audit: a reasoned
	// directive that suppressed nothing across the whole run is reported
	// as "stale-suppression". Only meaningful when every rule runs — a
	// partial -rules selection would call live directives stale.
	ReportStale bool
	directives  []supDirective
	supUsed     map[string]bool // "file:line|rule" pairs that suppressed something
}

func NewRunner(c *Config, fset *token.FileSet, rules []*Rule) *Runner {
	return &Runner{c: c, fset: fset, rules: rules, sup: suppressions{},
		stats: map[string]int{}, supUsed: map[string]bool{}}
}

func (r *Runner) add(rule string, pos token.Pos, msg string) {
	r.addAt(rule, r.fset.Position(pos), msg)
}

func (r *Runner) addAt(rule string, pos token.Position, msg string) {
	key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
	if r.sup[key][rule] {
		r.supUsed[key+"|"+rule] = true
		return
	}
	r.stats[rule]++
	r.diags = append(r.diags, Diagnostic{Pos: pos, Rule: rule, Msg: msg})
}

// Stats returns per-rule unsuppressed finding counts.
func (r *Runner) Stats() map[string]int { return r.stats }

// Package scans one package with every rule's Run hook.
func (r *Runner) Package(p *Package) {
	r.pkgs = append(r.pkgs, p)
	sup, directives := collectSuppressions(p, func(pos token.Pos, msg string) {
		r.add("lint-directive", pos, msg)
	})
	r.directives = append(r.directives, directives...)
	for key, rules := range sup {
		if r.sup[key] == nil {
			r.sup[key] = map[string]bool{}
		}
		for rule := range rules {
			r.sup[key][rule] = true
		}
	}
	for _, rule := range r.rules {
		if rule.Run == nil {
			continue
		}
		rule := rule
		rule.Run(r.c, p, func(pos token.Pos, msg string) {
			r.add(rule.Name, pos, msg)
		})
	}
}

// Finish runs the interprocedural and cross-package hooks and returns
// every unsuppressed finding sorted by position. The summary table is
// built (or restored from cache) only when a selected rule wants it.
func (r *Runner) Finish() []Diagnostic {
	needInterp := false
	for _, rule := range r.rules {
		if rule.Interp != nil {
			needInterp = true
		}
	}
	if needInterp {
		r.Interp = buildInterp(r.c, r.fset, r.ModRoot, r.CacheDir, r.pkgs)
		r.Interp.Suppressed = func(rule string, pos token.Position) bool {
			key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
			if r.sup[key][rule] {
				// A directive acting as an interprocedural walk barrier is
				// in use even when no finding lands on its line.
				r.supUsed[key+"|"+rule] = true
				return true
			}
			return false
		}
		for _, rule := range r.rules {
			if rule.Interp == nil {
				continue
			}
			rule := rule
			rule.Interp(r.c, r.Interp, func(pos token.Position, msg string) {
				r.addAt(rule.Name, pos, msg)
			})
		}
	}
	for _, rule := range r.rules {
		if rule.Finish == nil {
			continue
		}
		rule := rule
		rule.Finish(r.c, r.fset, func(pos token.Pos, msg string) {
			r.add(rule.Name, pos, msg)
		})
	}
	if r.ReportStale {
		for _, d := range r.directives {
			used := false
			for _, key := range d.keys {
				for _, rule := range d.rules {
					if r.supUsed[key+"|"+rule] {
						used = true
					}
				}
			}
			if !used {
				r.addAt("stale-suppression", d.pos, fmt.Sprintf(
					"//lint:ignore %s suppresses no finding: delete the directive or re-justify it",
					strings.Join(d.rules, ",")))
			}
		}
	}
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i].Pos, r.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return r.diags
}

// RunRules runs the rules over a single package — Run and Finish hooks
// both — and returns unsuppressed findings sorted by position. Multi-
// package runs use a Runner directly.
func RunRules(c *Config, p *Package, rules []*Rule) []Diagnostic {
	r := NewRunner(c, p.Fset, rules)
	r.ReportStale = true
	r.Package(p)
	return r.Finish()
}

// --- shared type helpers ---

// namedType unwraps pointers and returns the named type, if any.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// isPkgType reports whether t (through pointers) is the named type
// pkgPath.name.
func isPkgType(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// calleeFunc resolves a call's callee to its declared *types.Func (methods
// included), or nil for builtins, conversions, and function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// isChanType reports whether t is a channel type.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return isPkgType(t, "context", "Context")
}
