package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Config names the project-specific types and packages the rules key on.
// Tests override the paths to point at fixture packages.
type Config struct {
	// ObsPkgPath is the package whose exported handle types promise
	// nil-safe methods.
	ObsPkgPath string
	// ObsHandles are the handle type names within ObsPkgPath.
	ObsHandles []string
	// TuplePkgPath/TupleType name the executor tuple type whose frames
	// must not be mutated after being sent over a channel.
	TuplePkgPath string
	TupleType    string
	// ErrPkgs are package paths (exact, or prefix when ending in "/")
	// whose discarded error returns are flagged.
	ErrPkgs []string
	// FaultPkgPath is the fault-injection registry; production code may
	// only call the guarded probe helpers named in FaultGuarded from it.
	FaultPkgPath string
	FaultGuarded []string
	// OperatorPkgs are the runtime packages whose code must size working
	// memory through governor grants; MemBudgetField is the legacy static
	// knob whose reads are flagged there.
	OperatorPkgs   []string
	MemBudgetField string
}

// DefaultConfig is the configuration for this repository.
func DefaultConfig() *Config {
	return &Config{
		ObsPkgPath:   "asterix/internal/obs",
		ObsHandles:   []string{"Span", "Counter", "Gauge", "Histogram", "Registry"},
		TuplePkgPath: "asterix/internal/hyracks",
		TupleType:    "Tuple",
		ErrPkgs: []string{
			"io", "os", "encoding/",
			"asterix/internal/storage", "asterix/internal/txn",
		},
		FaultPkgPath: "asterix/internal/fault",
		FaultGuarded: []string{"Hit", "Tear", "Armed", "Hits", "Fired", "Snapshot", "BindMetrics"},
		OperatorPkgs: []string{
			"asterix/internal/hyracks", "asterix/internal/algebricks",
		},
		MemBudgetField: "MemBudget",
	}
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Rule is one analyzer check.
type Rule struct {
	Name string
	Doc  string
	Run  func(c *Config, p *Package, report func(token.Pos, string))
}

// AllRules returns every rule in stable order.
func AllRules() []*Rule {
	return []*Rule{
		ruleObsNil(),
		ruleLockHeld(),
		ruleGoLifecycle(),
		ruleErrDiscard(),
		ruleFrameAlias(),
		ruleFaultGate(),
		ruleMemGrant(),
	}
}

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)(?:\s+(.*))?$`)

// suppressions maps file:line to the set of rule names ignored there. A
// directive covers its own line and the next line, so it works both as a
// trailing comment and on the line above the flagged statement.
type suppressions map[string]map[string]bool

func collectSuppressions(p *Package, report func(token.Pos, string)) suppressions {
	sup := suppressions{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					report(c.Pos(), "lint:ignore directive is missing a reason (//lint:ignore rule reason)")
					continue
				}
				pos := p.Fset.Position(c.Pos())
				for _, rule := range strings.Split(m[1], ",") {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						key := fmt.Sprintf("%s:%d", pos.Filename, line)
						if sup[key] == nil {
							sup[key] = map[string]bool{}
						}
						sup[key][rule] = true
					}
				}
			}
		}
	}
	return sup
}

// RunRules runs the rules over a package and returns unsuppressed findings
// sorted by position.
func RunRules(c *Config, p *Package, rules []*Rule) []Diagnostic {
	var diags []Diagnostic
	sup := collectSuppressions(p, func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{Pos: p.Fset.Position(pos), Rule: "lint-directive", Msg: msg})
	})
	for _, r := range rules {
		r := r
		r.Run(c, p, func(pos token.Pos, msg string) {
			d := Diagnostic{Pos: p.Fset.Position(pos), Rule: r.Name, Msg: msg}
			key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
			if sup[key][r.Name] {
				return
			}
			diags = append(diags, d)
		})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}

// --- shared type helpers ---

// namedType unwraps pointers and returns the named type, if any.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// isPkgType reports whether t (through pointers) is the named type
// pkgPath.name.
func isPkgType(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// calleeFunc resolves a call's callee to its declared *types.Func (methods
// included), or nil for builtins, conversions, and function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// isChanType reports whether t is a channel type.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return isPkgType(t, "context", "Context")
}
