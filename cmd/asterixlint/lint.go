package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Config names the project-specific types and packages the rules key on.
// Tests override the paths to point at fixture packages.
type Config struct {
	// ObsPkgPath is the package whose exported handle types promise
	// nil-safe methods.
	ObsPkgPath string
	// ObsHandles are the handle type names within ObsPkgPath.
	ObsHandles []string
	// TuplePkgPath/TupleType name the executor tuple type whose frames
	// must not be mutated after being sent over a channel.
	TuplePkgPath string
	TupleType    string
	// ErrPkgs are package paths (exact, or prefix when ending in "/")
	// whose discarded error returns are flagged.
	ErrPkgs []string
	// FaultPkgPath is the fault-injection registry; production code may
	// only call the guarded probe helpers named in FaultGuarded from it.
	FaultPkgPath string
	FaultGuarded []string
	// OperatorPkgs are the runtime packages whose code must size working
	// memory through governor grants; MemBudgetField is the legacy static
	// knob whose reads are flagged there.
	OperatorPkgs   []string
	MemBudgetField string
	// Resources registers acquire/release pairs for the resource-leak
	// rule: every value produced by an acquire must reach one of its
	// releases on all paths out of the acquiring function.
	Resources []ResourceSpec
}

// DefaultConfig is the configuration for this repository.
func DefaultConfig() *Config {
	return &Config{
		ObsPkgPath:   "asterix/internal/obs",
		ObsHandles:   []string{"Span", "Counter", "Gauge", "Histogram", "Registry"},
		TuplePkgPath: "asterix/internal/hyracks",
		TupleType:    "Tuple",
		ErrPkgs: []string{
			"io", "os", "encoding/",
			"asterix/internal/storage", "asterix/internal/txn",
		},
		FaultPkgPath: "asterix/internal/fault",
		FaultGuarded: []string{"Hit", "Tear", "Armed", "Hits", "Fired", "Snapshot", "BindMetrics"},
		OperatorPkgs: []string{
			"asterix/internal/hyracks", "asterix/internal/algebricks",
		},
		MemBudgetField: "MemBudget",
		Resources: []ResourceSpec{
			{
				Pkg: "asterix/internal/mem", Recv: "Governor", Func: "Reserve", Result: 0,
				Desc: "memory grant",
				Releases: []ReleaseSpec{
					{Pkg: "asterix/internal/mem", Recv: "Grant", Func: "Release", Arg: -1},
				},
			},
			{
				Pkg: "asterix/internal/mem", Recv: "Governor", Func: "AdmitJob", Result: 0,
				Desc: "job admission grant",
				Releases: []ReleaseSpec{
					{Pkg: "asterix/internal/mem", Recv: "JobGrant", Func: "Release", Arg: -1},
				},
			},
			{
				Pkg: "asterix/internal/storage", Recv: "BufferCache", Func: "Pin", Result: 0,
				Desc: "pinned page",
				Releases: []ReleaseSpec{
					{Pkg: "asterix/internal/storage", Recv: "BufferCache", Func: "Unpin", Arg: 0},
				},
			},
			{
				Pkg: "asterix/internal/storage", Recv: "BufferCache", Func: "NewPage", Result: 0,
				Desc: "pinned page",
				Releases: []ReleaseSpec{
					{Pkg: "asterix/internal/storage", Recv: "BufferCache", Func: "Unpin", Arg: 0},
				},
			},
			{
				Pkg: "asterix/internal/lsm", Recv: "Tree", Func: "snapshot", Result: 0,
				Desc: "component snapshot",
				Releases: []ReleaseSpec{
					{Pkg: "asterix/internal/lsm", Recv: "Tree", Func: "release", Arg: 0},
				},
			},
			{
				Pkg: "asterix/internal/txn", Recv: "Manager", Func: "Begin", Result: 0,
				Desc: "transaction",
				Releases: []ReleaseSpec{
					{Pkg: "asterix/internal/txn", Recv: "Txn", Func: "Commit", Arg: -1},
					{Pkg: "asterix/internal/txn", Recv: "Txn", Func: "Abort", Arg: -1},
				},
			},
			{
				Pkg: "os", Func: "Open", Result: 0,
				Desc: "open file",
				Releases: []ReleaseSpec{
					{Pkg: "os", Recv: "File", Func: "Close", Arg: -1},
				},
			},
			{
				Pkg: "os", Func: "Create", Result: 0,
				Desc: "open file",
				Releases: []ReleaseSpec{
					{Pkg: "os", Recv: "File", Func: "Close", Arg: -1},
				},
			},
			{
				Pkg: "os", Func: "OpenFile", Result: 0,
				Desc: "open file",
				Releases: []ReleaseSpec{
					{Pkg: "os", Recv: "File", Func: "Close", Arg: -1},
				},
			},
		},
	}
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Rule is one analyzer check. Run is invoked once per package; Finish,
// when set, runs once after every package has been scanned — it is how
// repo-global analyses (lock-order) report on state accumulated across
// packages. The positions a Finish reports must come from the shared
// loader FileSet.
type Rule struct {
	Name   string
	Doc    string
	Run    func(c *Config, p *Package, report func(token.Pos, string))
	Finish func(c *Config, fset *token.FileSet, report func(token.Pos, string))
}

// AllRules returns every rule in stable order. Rules carrying
// cross-package state are built fresh on each call, so independent
// runs (and tests) do not share graphs.
func AllRules() []*Rule {
	return []*Rule{
		ruleObsNil(),
		ruleLockHeld(),
		ruleGoLifecycle(),
		ruleErrDiscard(),
		ruleFrameAlias(),
		ruleFaultGate(),
		ruleMemGrant(),
		ruleDeferUnlock(),
		ruleLockOrder(),
		ruleResourceLeak(),
		ruleCtxFlow(),
	}
}

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)(?:\s+(.*))?$`)

// suppressions maps file:line to the set of rule names ignored there. A
// directive covers its own line and the next line, so it works both as a
// trailing comment and on the line above the flagged statement. Stacked
// directives chain: when the next line holds another lint:ignore
// directive, coverage extends past it, so several single-rule
// directives above one statement all reach the statement — previously
// only the bottom directive of a stack applied, and a line carrying
// findings from two rules could not be suppressed one rule per
// directive line.
type suppressions map[string]map[string]bool

func collectSuppressions(p *Package, report func(token.Pos, string)) suppressions {
	sup := suppressions{}
	for _, f := range p.Files {
		// Lines occupied by a lint:ignore directive, for stack chaining.
		directiveLines := map[string]map[int]bool{}
		type directive struct {
			rules    []string
			filename string
			line     int
		}
		var directives []directive
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					report(c.Pos(), "lint:ignore directive is missing a reason (//lint:ignore rule reason)")
					continue
				}
				pos := p.Fset.Position(c.Pos())
				if directiveLines[pos.Filename] == nil {
					directiveLines[pos.Filename] = map[int]bool{}
				}
				directiveLines[pos.Filename][pos.Line] = true
				directives = append(directives, directive{
					rules:    strings.Split(m[1], ","),
					filename: pos.Filename,
					line:     pos.Line,
				})
			}
		}
		for _, d := range directives {
			// Own line, then chain down through any stacked directives
			// to the first non-directive line.
			cover := []int{d.line}
			next := d.line + 1
			for directiveLines[d.filename][next] {
				cover = append(cover, next)
				next++
			}
			cover = append(cover, next)
			for _, rule := range d.rules {
				for _, line := range cover {
					key := fmt.Sprintf("%s:%d", d.filename, line)
					if sup[key] == nil {
						sup[key] = map[string]bool{}
					}
					sup[key][rule] = true
				}
			}
		}
	}
	return sup
}

// Runner drives the rules over any number of packages, accumulating
// suppressions and diagnostics globally so that cross-package Finish
// hooks are filtered by the same directives as per-package findings.
type Runner struct {
	c     *Config
	fset  *token.FileSet
	rules []*Rule
	sup   suppressions
	diags []Diagnostic
}

func NewRunner(c *Config, fset *token.FileSet, rules []*Rule) *Runner {
	return &Runner{c: c, fset: fset, rules: rules, sup: suppressions{}}
}

func (r *Runner) add(rule string, pos token.Pos, msg string) {
	d := Diagnostic{Pos: r.fset.Position(pos), Rule: rule, Msg: msg}
	key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
	if r.sup[key][rule] {
		return
	}
	r.diags = append(r.diags, d)
}

// Package scans one package with every rule's Run hook.
func (r *Runner) Package(p *Package) {
	sup := collectSuppressions(p, func(pos token.Pos, msg string) {
		r.add("lint-directive", pos, msg)
	})
	for key, rules := range sup {
		if r.sup[key] == nil {
			r.sup[key] = map[string]bool{}
		}
		for rule := range rules {
			r.sup[key][rule] = true
		}
	}
	for _, rule := range r.rules {
		rule := rule
		rule.Run(r.c, p, func(pos token.Pos, msg string) {
			r.add(rule.Name, pos, msg)
		})
	}
}

// Finish runs the cross-package hooks and returns every unsuppressed
// finding sorted by position.
func (r *Runner) Finish() []Diagnostic {
	for _, rule := range r.rules {
		if rule.Finish == nil {
			continue
		}
		rule := rule
		rule.Finish(r.c, r.fset, func(pos token.Pos, msg string) {
			r.add(rule.Name, pos, msg)
		})
	}
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i].Pos, r.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return r.diags
}

// RunRules runs the rules over a single package — Run and Finish hooks
// both — and returns unsuppressed findings sorted by position. Multi-
// package runs use a Runner directly.
func RunRules(c *Config, p *Package, rules []*Rule) []Diagnostic {
	r := NewRunner(c, p.Fset, rules)
	r.Package(p)
	return r.Finish()
}

// --- shared type helpers ---

// namedType unwraps pointers and returns the named type, if any.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// isPkgType reports whether t (through pointers) is the named type
// pkgPath.name.
func isPkgType(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// calleeFunc resolves a call's callee to its declared *types.Func (methods
// included), or nil for builtins, conversions, and function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// isChanType reports whether t is a channel type.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return isPkgType(t, "context", "Context")
}
