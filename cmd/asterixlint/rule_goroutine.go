package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ruleGoLifecycle flags `go func(...) {...}()` statements whose goroutine
// has no visible join or cancellation: nothing in the literal's body (or
// its call arguments) touches a sync.WaitGroup, a channel, or a
// context.Context. Such fire-and-forget goroutines outlive jobs, leak
// under error paths, and are exactly the lifecycle bugs the long-running
// feed/executor code paths cannot afford.
func ruleGoLifecycle() *Rule {
	return &Rule{
		Name: "go-lifecycle",
		Doc:  "every go func literal must be tied to a WaitGroup, channel, or context",
		Run:  runGoLifecycle,
	}
}

func runGoLifecycle(c *Config, p *Package, report func(token.Pos, string)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true // named functions manage their own lifecycle
			}
			if goroutineTied(p, g.Call, lit) {
				return true
			}
			report(g.Pos(), "goroutine has no join or cancellation: tie it to a sync.WaitGroup, a channel, or a context")
			return true
		})
	}
}

// goroutineTied reports whether the goroutine is observably joined or
// cancellable: a WaitGroup/channel/context flows in through the call
// arguments, or the body performs a channel operation, WaitGroup call, or
// context use.
func goroutineTied(p *Package, call *ast.CallExpr, lit *ast.FuncLit) bool {
	tiedType := func(t types.Type) bool {
		return isChanType(t) || isContextType(t) || isWaitGroup(t)
	}
	for _, a := range call.Args {
		if tv, ok := p.Info.Types[a]; ok && tiedType(tv.Type) {
			return true
		}
	}
	tied := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			tied = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				tied = true
			}
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[x.X]; ok && isChanType(tv.Type) {
				tied = true
			}
		case *ast.SelectStmt:
			tied = true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if tv, ok := p.Info.Types[x.Args[0]]; ok && isChanType(tv.Type) {
					tied = true
				}
			}
			if fn := calleeFunc(p.Info, x); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				sig, _ := fn.Type().(*types.Signature)
				if sig != nil && sig.Recv() != nil && isWaitGroup(sig.Recv().Type()) {
					tied = true
				}
			}
		case *ast.Ident:
			if obj := p.Info.Uses[x]; obj != nil && (isContextType(obj.Type()) || isWaitGroup(obj.Type())) {
				tied = true
			}
		}
		return !tied
	})
	return tied
}

func isWaitGroup(t types.Type) bool {
	return isPkgType(t, "sync", "WaitGroup")
}
