package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ruleFrameAlias flags executor frames (Tuple / []Tuple values) that are
// mutated after being sent over a channel. A connector frame handed to a
// channel is owned by the consumer; appending to it, writing an element,
// or re-slicing it back to zero length reuses the backing array under the
// reader — the silent-corruption-under-concurrency class of bug from the
// paper's Section V. The fix is always the same: hand off a fresh frame
// (set the variable to nil / make a new one) or copy via the tuple.go
// helpers before sending.
//
// Detection is per-function and identifier-based: a send event is a
// direct `ch <- x` or a call passing x alongside a `chan`-of-frame
// parameter (the connWriter send helpers); a mutation after the send
// without an intervening reset assignment is reported.
func ruleFrameAlias() *Rule {
	return &Rule{
		Name: "frame-alias",
		Doc:  "frames sent over connector channels must not be mutated afterwards",
		Run:  runFrameAlias,
	}
}

func runFrameAlias(c *Config, p *Package, report func(token.Pos, string)) {
	isTuple := func(t types.Type) bool {
		return isPkgType(t, c.TuplePkgPath, c.TupleType)
	}
	isFrame := func(t types.Type) bool {
		if t == nil {
			return false
		}
		if isTuple(t) {
			return true
		}
		if sl, ok := t.Underlying().(*types.Slice); ok {
			return isTuple(sl.Elem())
		}
		return false
	}
	isFrameChan := func(t types.Type) bool {
		ch, ok := t.Underlying().(*types.Chan)
		return ok && isFrame(ch.Elem())
	}

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFrameAliasing(p, body, isFrame, isFrameChan, report)
			}
			return true
		})
	}
}

type aliasEvent struct {
	pos  token.Pos
	kind int // 0 = send, 1 = mutate, 2 = reset
	obj  types.Object
	desc string
}

func checkFrameAliasing(p *Package, body *ast.BlockStmt, isFrame, isFrameChan func(types.Type) bool, report func(token.Pos, string)) {
	objOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			obj = p.Info.Defs[id]
		}
		if obj == nil {
			return nil
		}
		if tv, ok := p.Info.Types[e]; !ok || !isFrame(tv.Type) {
			return nil
		}
		return obj
	}

	var events []aliasEvent
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			// Nested literals are separate executions, analyzed on their
			// own visit by runFrameAlias.
			_ = st
			return false
		case *ast.SendStmt:
			if obj := objOf(st.Value); obj != nil {
				events = append(events, aliasEvent{st.Pos(), 0, obj, "sent over a channel"})
			}
		case *ast.CallExpr:
			// A call passing a frame alongside a chan-of-frame argument
			// or through a func whose params include one (the send
			// helpers in exec.go).
			hasChan := false
			if tv, ok := p.Info.Types[st.Fun]; ok {
				if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
					for i := 0; i < sig.Params().Len(); i++ {
						if isFrameChan(sig.Params().At(i).Type()) {
							hasChan = true
						}
					}
				}
			}
			if !hasChan {
				return true
			}
			for _, a := range st.Args {
				if obj := objOf(a); obj != nil {
					events = append(events, aliasEvent{st.Pos(), 0, obj, "passed to a channel send helper"})
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				// x[i] = ... → mutation of x's backing array.
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if obj := objOf(ix.X); obj != nil {
						events = append(events, aliasEvent{st.Pos(), 1, obj, "element written"})
					}
					continue
				}
				obj := objOf(lhs)
				if obj == nil {
					continue
				}
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				} else if len(st.Rhs) == 1 {
					rhs = st.Rhs[0]
				}
				switch classifyFrameRHS(p, rhs, obj) {
				case 1:
					events = append(events, aliasEvent{st.Pos(), 1, obj, "grown or re-sliced in place"})
				default:
					events = append(events, aliasEvent{st.Pos(), 2, obj, ""})
				}
			}
		}
		return true
	})

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	pending := map[types.Object]string{}
	for _, ev := range events {
		switch ev.kind {
		case 0:
			pending[ev.obj] = ev.desc
		case 1:
			if how, ok := pending[ev.obj]; ok {
				report(ev.pos, "frame "+ev.obj.Name()+" was "+how+" and is "+ev.desc+
					" afterwards; the consumer aliases its backing array — hand off a fresh frame or copy it first")
			}
		case 2:
			delete(pending, ev.obj)
		}
	}
}

// classifyFrameRHS reports how an assignment to obj treats its backing
// array: 1 = in-place reuse (append to self, re-slice of self), 0 = fresh
// value (nil, make, literal, other expression).
func classifyFrameRHS(p *Package, rhs ast.Expr, obj types.Object) int {
	if rhs == nil {
		return 0
	}
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			if base, ok := ast.Unparen(e.Args[0]).(*ast.Ident); ok && (p.Info.Uses[base] == obj) {
				return 1
			}
		}
	case *ast.SliceExpr:
		if base, ok := ast.Unparen(e.X).(*ast.Ident); ok && p.Info.Uses[base] == obj {
			return 1
		}
	}
	return 0
}
