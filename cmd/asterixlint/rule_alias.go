package main

import (
	"go/ast"
	"go/token"
	"go/types"

	"asterix/cmd/asterixlint/cfg"
)

// ruleFrameAlias flags executor frames (Tuple / []Tuple values) that are
// mutated after being sent over a channel. A connector frame handed to a
// channel is owned by the consumer; appending to it, writing an element,
// or re-slicing it back to zero length reuses the backing array under the
// reader — the silent-corruption-under-concurrency class of bug from the
// paper's Section V. The fix is always the same: hand off a fresh frame
// (set the variable to nil / make a new one) or copy via the tuple.go
// helpers before sending.
//
// The analysis is flow-sensitive over the CFG: "sent" is a per-path fact,
// so a send and a mutation on mutually exclusive branches never report,
// while a send at the bottom of a loop reaches a mutation at the top
// through the back edge. Send events are a direct `ch <- x`, a call
// passing x alongside a `chan`-of-frame parameter (the connWriter send
// helpers), a call passing x through a function value (the callee is
// unknown, so assume it forwards to a consumer), and — summary-
// sensitively — a call whose resolved parameter summary says the callee
// retains x. Pool Get/Put calls are excluded: that lifecycle belongs to
// the pool-safety rules, and a Put is a return to the pool, not a
// consumer handoff.
func ruleFrameAlias() *Rule {
	return &Rule{
		Name:   "frame-alias",
		Doc:    "frames sent over connector channels must not be mutated afterwards",
		Interp: runFrameAlias,
	}
}

func runFrameAlias(c *Config, ip *Interp, report func(token.Position, string)) {
	for _, p := range ip.Pkgs() {
		p := p
		funcBodies(p, func(_ *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
			fa := &frameAliasBody{
				c: c, p: p, ip: ip,
				descByPos: map[token.Pos]string{},
				reported:  map[string]bool{},
				report:    report,
			}
			fa.check(body)
		})
	}
}

type frameAliasBody struct {
	c         *Config
	p         *Package
	ip        *Interp
	descByPos map[token.Pos]string // send pos → how the frame left
	reported  map[string]bool
	report    func(token.Position, string)
}

func (fa *frameAliasBody) isTuple(t types.Type) bool {
	return isPkgType(t, fa.c.TuplePkgPath, fa.c.TupleType)
}

func (fa *frameAliasBody) isFrame(t types.Type) bool {
	if t == nil {
		return false
	}
	if fa.isTuple(t) {
		return true
	}
	if sl, ok := t.Underlying().(*types.Slice); ok {
		return fa.isTuple(sl.Elem())
	}
	return false
}

func (fa *frameAliasBody) isFrameChan(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	return ok && fa.isFrame(ch.Elem())
}

// frameObj resolves e to a frame-typed identifier's object, or nil.
func (fa *frameAliasBody) frameObj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := fa.p.Info.Uses[id]
	if obj == nil {
		obj = fa.p.Info.Defs[id]
	}
	if obj == nil || !fa.isFrame(obj.Type()) {
		return nil
	}
	return obj
}

// key gives a frame object a stable state key: its declaration position.
func (fa *frameAliasBody) key(obj types.Object) string {
	return fa.p.Fset.Position(obj.Pos()).String()
}

type frameSend struct {
	obj  types.Object
	pos  token.Pos
	desc string
}

// sends collects the frame handoffs inside n (function literals run
// later under their own analysis and are skipped).
func (fa *frameAliasBody) sends(n ast.Node) []frameSend {
	var out []frameSend
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		switch v := x.(type) {
		case *ast.SendStmt:
			if obj := fa.frameObj(v.Value); obj != nil {
				out = append(out, frameSend{obj, v.Pos(), "sent over a channel"})
			}
		case *ast.CallExpr:
			out = append(out, fa.callSends(v)...)
		}
		return true
	})
	return out
}

// callSends classifies one call's frame arguments.
func (fa *frameAliasBody) callSends(call *ast.CallExpr) []frameSend {
	// Pool traffic is the pool-safety rules' territory.
	if poolGetSpec(fa.c, fa.p.Info, call) != nil {
		return nil
	}
	if t, ps := poolPutTarget(fa.c, fa.p.Info, call); ps != nil {
		_ = t
		return nil
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := fa.p.Info.Uses[id].(*types.Builtin); isBuiltin {
			return nil // append/copy/len aliasing is the assignment classifier's job
		}
	}
	if tv, ok := fa.p.Info.Types[call.Fun]; ok && tv.IsType() {
		return nil // conversion
	}
	sig, _ := fa.p.Info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		if u, ok := fa.p.Info.TypeOf(call.Fun).Underlying().(*types.Signature); ok {
			sig = u
		}
	}
	hasChan := false
	if sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			if fa.isFrameChan(sig.Params().At(i).Type()) {
				hasChan = true
			}
		}
	}
	fn := calleeFunc(fa.p.Info, call)
	var out []frameSend
	for i, arg := range call.Args {
		obj := fa.frameObj(arg)
		if obj == nil {
			continue
		}
		switch {
		case hasChan:
			out = append(out, frameSend{obj, call.Pos(), "passed to a channel send helper"})
		case fn == nil:
			// Function-valued callee (connector write hooks, emit
			// closures): unknown body, assume it forwards the frame to a
			// consumer.
			out = append(out, frameSend{obj, call.Pos(), "passed through a function value"})
		default:
			// Known callee: consult its resolved parameter summary for
			// the named tuple type; "kept" means it retained the value.
			if fa.paramKept(fn, i, call, obj) {
				out = append(out, frameSend{obj, call.Pos(), "handed to " + fn.Name() + ", which retains it"})
			}
		}
	}
	return out
}

// paramKept reports whether fn's summary resolves parameter i (for
// obj's named type) as kept.
func (fa *frameAliasBody) paramKept(fn *types.Func, i int, call *ast.CallExpr, obj types.Object) bool {
	if fa.ip == nil {
		return false
	}
	n := namedType(obj.Type())
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	tkey := n.Obj().Pkg().Path() + "." + n.Obj().Name()
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params() == nil {
		return false
	}
	if call.Ellipsis.IsValid() || (sig.Variadic() && i >= sig.Params().Len()-1) || i >= sig.Params().Len() {
		return false
	}
	return fa.ip.ParamResolved(cfg.FuncID(fn), i, tkey) == ParamKept
}

func (fa *frameAliasBody) check(body *ast.BlockStmt) {
	g := cfg.New(body)
	lat := cfg.Lattice[posSet]{
		Clone: clonePosSet,
		Meet:  meetPosSet,
		Equal: equalPosSet,
		Node:  fa.transfer,
	}
	in := cfg.Forward(g, posSet{}, lat)
	cfg.Visit(g, in, lat,
		func(blk *cfg.Block, n ast.Node, before posSet) { fa.checkNode(n, before) },
		nil)
}

// transfer applies one node's effect: sends set the per-path "sent"
// fact, rebinding to a fresh value clears it, in-place growth keeps it.
// Sends apply before resets — in `buf = consume(ch, buf)` the call runs
// first, then the rebind makes buf a fresh frame again.
func (fa *frameAliasBody) transfer(n ast.Node, s posSet) posSet {
	for _, ev := range fa.sends(n) {
		fa.descByPos[ev.pos] = ev.desc
		s["s|"+fa.key(ev.obj)] = ev.pos
	}
	if as, ok := n.(*ast.AssignStmt); ok {
		for i, lhs := range as.Lhs {
			obj := fa.frameObj(lhs)
			if obj == nil {
				continue
			}
			var rhs ast.Expr
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0]
			}
			if classifyFrameRHS(fa.p, rhs, obj) == 0 {
				delete(s, "s|"+fa.key(obj))
			}
		}
	}
	return s
}

// checkNode reports mutations of frames whose "sent" fact holds on some
// path into the node.
func (fa *frameAliasBody) checkNode(n ast.Node, before posSet) {
	emit := func(obj types.Object, pos token.Pos, how string) {
		sentAt, sent := before["s|"+fa.key(obj)]
		if !sent {
			return
		}
		k := fa.key(obj) + "|" + fa.p.Fset.Position(pos).String()
		if fa.reported[k] {
			return
		}
		fa.reported[k] = true
		fa.report(fa.p.Fset.Position(pos), "frame "+obj.Name()+" was "+fa.descByPos[sentAt]+
			" and is "+how+" afterwards; the consumer aliases its backing array — hand off a fresh frame or copy it first")
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		as, ok := x.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				if obj := fa.frameObj(ix.X); obj != nil {
					emit(obj, as.Pos(), "element written")
				}
				continue
			}
			obj := fa.frameObj(lhs)
			if obj == nil {
				continue
			}
			var rhs ast.Expr
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0]
			}
			if classifyFrameRHS(fa.p, rhs, obj) == 1 {
				emit(obj, as.Pos(), "grown or re-sliced in place")
			}
		}
		return true
	})
}

// classifyFrameRHS reports how an assignment to obj treats its backing
// array: 1 = in-place reuse (append to self, re-slice of self), 0 = fresh
// value (nil, make, literal, other expression).
func classifyFrameRHS(p *Package, rhs ast.Expr, obj types.Object) int {
	if rhs == nil {
		return 0
	}
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			if base, ok := ast.Unparen(e.Args[0]).(*ast.Ident); ok && (p.Info.Uses[base] == obj) {
				return 1
			}
		}
	case *ast.SliceExpr:
		if base, ok := ast.Unparen(e.X).(*ast.Ident); ok && p.Info.Uses[base] == obj {
			return 1
		}
	}
	return 0
}
