package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"

	"asterix/cmd/asterixlint/cfg"
)

// ruleResourceLeak tracks values of registered acquire/release pairs —
// memory-governor grants, buffer-cache page pins, LSM component
// reference snapshots, transactions, opened files — through the CFG and
// reports any path on which an acquired value reaches a return (or an
// explicit panic) without its release. The lattice is a may-analysis
// over acquisition sites: an acquire generates the fact, a matching
// release (directly, nested in any expression, or scheduled by defer —
// which also covers panic paths) kills it, and the standard Go
// error-contract is modeled branch-sensitively: after `v, err :=
// acquire()`, the `err != nil` branch kills the fact, because the
// acquire functions return a nil resource with a non-nil error.
//
// Ownership transfers end tracking instead of reporting: returning the
// value, storing it into a field/map/global, or capturing it in a
// closure all assume the new owner releases it. Passing the value to
// another function used to be a blanket transfer too; it now consults
// the callee's interprocedural parameter summary — a helper proven to
// neither release, store, return, nor forward the resource (action
// "none") leaves the caller the owner, so the fact survives the call
// and a missing release downstream is a finding. Unknown callees keep
// the old conservative transfer.
func ruleResourceLeak() *Rule {
	return &Rule{
		Name:   "resource-leak",
		Doc:    "acquired resources (grants, pins, component refs, txns, files) must be released on every path",
		Interp: runResourceLeak,
	}
}

// ResourceSpec registers one acquire function whose result must reach a
// release. Recv is empty for package-level functions; Result indexes the
// resource among the call's results. Type names the resource's named
// type within Pkg — it is what lets the interprocedural engine classify
// resource-typed parameters of helper functions; specs whose resource
// has no named type (a slice, say) leave it empty and keep the old
// blanket ownership-transfer behavior at call sites.
type ResourceSpec struct {
	Pkg, Recv, Func string
	Result          int
	Type            string
	Desc            string
	Releases        []ReleaseSpec
}

// ReleaseSpec is one call that releases a resource: the resource sits in
// argument Arg, or is the method receiver when Arg is -1.
type ReleaseSpec struct {
	Pkg, Recv, Func string
	Arg             int
}

func runResourceLeak(c *Config, ip *Interp, reportAt func(token.Position, string)) {
	if len(c.Resources) == 0 {
		return
	}
	for _, p := range ip.Pkgs() {
		p := p
		report := func(pos token.Pos, msg string) {
			reportAt(p.Fset.Position(pos), msg)
		}
		funcBodies(p, func(_ *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
			a := newLeakAnalysis(c, p, report)
			a.ip = ip
			a.check(body)
		})
	}
}

// leakSite is one tracked acquisition.
type leakSite struct {
	id   string // stable per-function id (position string)
	pos  token.Pos
	spec *ResourceSpec
	obj  types.Object // variable holding the resource (nil if discarded)
	err  types.Object // companion error result, when assigned
	via  string       // helper the value survived through (summary "none")
}

type leakAnalysis struct {
	c      *Config
	p      *Package
	ip     *Interp // nil in unit tests that exercise the lattice directly
	report func(token.Pos, string)

	sites   map[string]*leakSite // id → site
	byNode  map[ast.Node][]*leakSite
	byObj   map[types.Object]*leakSite
	errObjs map[types.Object][]*leakSite
}

func newLeakAnalysis(c *Config, p *Package, report func(token.Pos, string)) *leakAnalysis {
	return &leakAnalysis{
		c: c, p: p, report: report,
		sites:   map[string]*leakSite{},
		byNode:  map[ast.Node][]*leakSite{},
		byObj:   map[types.Object]*leakSite{},
		errObjs: map[types.Object][]*leakSite{},
	}
}

// acquireSpec matches a call against the registered acquire functions.
func (a *leakAnalysis) acquireSpec(call *ast.CallExpr) *ResourceSpec {
	fn := calleeFunc(a.p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	for i := range a.c.Resources {
		spec := &a.c.Resources[i]
		if fn.Pkg().Path() != spec.Pkg || fn.Name() != spec.Func {
			continue
		}
		if !recvMatches(fn, spec.Recv) {
			continue
		}
		return spec
	}
	return nil
}

// releaseTarget resolves call as a release and returns the expression
// holding the released resource.
func (a *leakAnalysis) releaseTarget(call *ast.CallExpr) (ast.Expr, bool) {
	fn := calleeFunc(a.p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return nil, false
	}
	for i := range a.c.Resources {
		for _, rel := range a.c.Resources[i].Releases {
			if fn.Pkg().Path() != rel.Pkg || fn.Name() != rel.Func || !recvMatches(fn, rel.Recv) {
				continue
			}
			if rel.Arg == -1 {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					return sel.X, true
				}
				return nil, false
			}
			if rel.Arg < len(call.Args) {
				return call.Args[rel.Arg], true
			}
			return nil, false
		}
	}
	return nil, false
}

func recvMatches(fn *types.Func, recv string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv == "" {
		return sig.Recv() == nil
	}
	if sig.Recv() == nil {
		return false
	}
	rt := namedType(sig.Recv().Type())
	return rt != nil && rt.Obj().Name() == recv
}

func (a *leakAnalysis) objOf(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := a.p.Info.Uses[id]; obj != nil {
		return obj
	}
	return a.p.Info.Defs[id]
}

// collect registers every acquisition in the graph's nodes, attaching
// sites to their generating node.
func (a *leakAnalysis) collect(g *cfg.Graph) {
	newSite := func(n ast.Node, call *ast.CallExpr, spec *ResourceSpec, obj, errObj types.Object) {
		s := &leakSite{
			id:   a.p.Fset.Position(call.Pos()).String(),
			pos:  call.Pos(),
			spec: spec,
			obj:  obj,
			err:  errObj,
		}
		a.sites[s.id] = s
		a.byNode[n] = append(a.byNode[n], s)
		if obj != nil {
			a.byObj[obj] = s
		}
		if errObj != nil {
			a.errObjs[errObj] = append(a.errObjs[errObj], s)
		}
	}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 {
					continue
				}
				call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
				if !ok {
					continue
				}
				spec := a.acquireSpec(call)
				if spec == nil {
					continue
				}
				var obj, errObj types.Object
				discarded := false
				if spec.Result < len(st.Lhs) {
					lhs := ast.Unparen(st.Lhs[spec.Result])
					if id, isIdent := lhs.(*ast.Ident); isIdent {
						if id.Name == "_" {
							discarded = true
						} else {
							obj = a.objOf(id)
						}
					} else {
						continue // stored straight into a field/slot: owner escapes
					}
				}
				for i, l := range st.Lhs {
					if i == spec.Result {
						continue
					}
					if id, isIdent := ast.Unparen(l).(*ast.Ident); isIdent && id.Name != "_" {
						o := a.objOf(id)
						if o != nil && isErrorType(o.Type()) {
							errObj = o
						}
					}
				}
				if discarded {
					a.report(call.Pos(), fmt.Sprintf("%s from %s is discarded with _: it can never be released", spec.Desc, spec.Func))
					continue
				}
				if obj == nil {
					continue
				}
				newSite(n, call, spec, obj, errObj)
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
					if spec := a.acquireSpec(call); spec != nil {
						a.report(call.Pos(), fmt.Sprintf("%s from %s is discarded: the result must be kept and released", spec.Desc, spec.Func))
					}
				}
			}
		}
	}
}

func (a *leakAnalysis) check(body *ast.BlockStmt) {
	g := cfg.New(body)
	a.collect(g)
	if len(a.sites) == 0 {
		return
	}
	lat := cfg.Lattice[posSet]{
		Clone: clonePosSet,
		Meet:  meetPosSet,
		Equal: equalPosSet,
		Node:  a.transfer,
		Refine: func(blk *cfg.Block, e cfg.Edge, s posSet) posSet {
			return a.refine(blk, e, s)
		},
	}
	in := cfg.Forward(g, posSet{}, lat)

	reported := map[string]bool{}
	cfg.Visit(g, in, lat, nil, func(blk *cfg.Block, e cfg.Edge, out posSet) {
		if e.Kind != cfg.Return && e.Kind != cfg.Panic {
			return
		}
		exit := p_returnWord(e.Kind)
		line := a.p.Fset.Position(returnPos(blk, g)).Line
		if e.Kind == cfg.Panic && len(blk.Nodes) > 0 {
			line = a.p.Fset.Position(blk.Nodes[len(blk.Nodes)-1].Pos()).Line
		}
		for _, id := range sortedKeys(out) {
			if reported[id] {
				continue
			}
			reported[id] = true
			s := a.sites[id]
			rel := releaseNames(s.spec)
			msg := fmt.Sprintf("%s acquired here does not reach %s on the path that %ss at line %d",
				s.spec.Desc, rel, exit, line)
			if s.via != "" {
				msg += fmt.Sprintf(" (passing it to %s does not discharge it: that helper neither releases nor keeps it)", s.via)
			}
			a.report(s.pos, msg)
		}
	})
}

func p_returnWord(k cfg.EdgeKind) string {
	if k == cfg.Panic {
		return "panic"
	}
	return "return"
}

func releaseNames(spec *ResourceSpec) string {
	switch len(spec.Releases) {
	case 0:
		return "a release"
	case 1:
		return spec.Releases[0].Func
	default:
		s := spec.Releases[0].Func
		for _, r := range spec.Releases[1:] {
			s += "/" + r.Func
		}
		return s
	}
}

// transfer is the per-node gen/kill function.
func (a *leakAnalysis) transfer(n ast.Node, s posSet) posSet {
	// Kills first: releases anywhere in the node (including nested in
	// errors.Join(...) and inside deferred closures).
	a.applyReleases(n, s)
	// Escapes: uses that transfer ownership end tracking. The audit
	// mode keeps tracking through escapes, trading precision for
	// recall: it overwhelms CI with false positives but is the right
	// lens for a manual leak hunt (every site it lists is a path where
	// release depends on some other function doing its job).
	if os.Getenv("ASTERIXLINT_AUDIT_NOESCAPE") == "" {
		a.applyEscapes(n, s)
	}
	// Gen last: the acquisition's own statement tracks its site (and an
	// overwrite of the same variable drops the old site).
	for _, site := range a.byNode[n] {
		for id, other := range a.sites {
			if other.obj == site.obj && id != site.id {
				delete(s, id)
			}
		}
		s[site.id] = site.pos
	}
	// A plain reassignment of a tracked variable ends tracking of the
	// old value (the common `f.Close(); f, err = os.Open(next)` loop
	// shape re-gens a new site instead).
	if as, ok := n.(*ast.AssignStmt); ok && len(a.byNode[n]) == 0 {
		for _, l := range as.Lhs {
			if obj := a.objOf(l); obj != nil {
				if site, tracked := a.byObj[obj]; tracked {
					delete(s, site.id)
				}
			}
		}
	}
	return s
}

func (a *leakAnalysis) applyReleases(n ast.Node, s posSet) {
	ast.Inspect(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if target, isRel := a.releaseTarget(call); isRel {
			if obj := a.objOf(target); obj != nil {
				if site, tracked := a.byObj[obj]; tracked {
					delete(s, site.id)
				}
			}
		}
		return true
	})
}

// applyEscapes kills sites whose variable is used in an
// ownership-transferring position within n. Benign uses — the receiver
// of a method call, a comparison operand, a field read, the variable's
// own reassignment target — do not escape.
func (a *leakAnalysis) applyEscapes(n ast.Node, s posSet) {
	live := func(e ast.Expr) *leakSite {
		obj := a.objOf(e)
		if obj == nil {
			return nil
		}
		site, ok := a.byObj[obj]
		if !ok {
			return nil
		}
		if _, isLive := s[site.id]; !isLive {
			return nil
		}
		return site
	}
	kill := func(e ast.Expr) {
		if site := live(e); site != nil {
			delete(s, site.id)
		}
	}
	var scan func(x ast.Node)
	scanExpr := func(e ast.Expr) { scan(e) }
	scan = func(x ast.Node) {
		switch v := x.(type) {
		case nil:
			return
		case *ast.Ident:
			kill(v) // bare use in an unhandled context: assume escape
		case *ast.ParenExpr:
			scanExpr(v.X)
		case *ast.SelectorExpr:
			if live(v.X) != nil {
				return // field/method read off the resource: benign
			}
			scanExpr(v.X)
		case *ast.BinaryExpr:
			// Comparisons against the handle (v != nil) are benign.
			if live(v.X) == nil {
				scanExpr(v.X)
			}
			if live(v.Y) == nil {
				scanExpr(v.Y)
			}
		case *ast.CallExpr:
			if target, isRel := a.releaseTarget(v); isRel {
				// Already applied as a kill; the resource position and
				// receiver are benign, other arguments scan as usual.
				for _, arg := range v.Args {
					if arg != target {
						scanExpr(arg)
					}
				}
				return
			}
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && live(sel.X) != nil {
				// Method call on the resource (f.Read, gr.Grow): the
				// receiver is benign; arguments may still escape.
				for _, arg := range v.Args {
					scanExpr(arg)
				}
				return
			}
			scanExpr(v.Fun)
			fn := calleeFunc(a.p.Info, v)
			for i, arg := range v.Args {
				site := live(arg)
				if site == nil {
					scanExpr(arg)
					continue
				}
				// Interprocedural: a live resource handed to an analyzed
				// module callee consults its resolved parameter action. A
				// "none" verdict means the helper neither releases, stores,
				// returns, nor forwards the value — the caller is still the
				// owner, so the fact survives the call. Every other verdict
				// (released, kept, or the callee/param being unknown) ends
				// tracking as before.
				if a.ip != nil && fn != nil && site.spec.Type != "" && !v.Ellipsis.IsValid() {
					if sig, ok := fn.Type().(*types.Signature); ok &&
						!(sig.Variadic() && i >= sig.Params().Len()-1) && i < sig.Params().Len() {
						tkey := site.spec.Pkg + "." + site.spec.Type
						if a.ip.ParamResolved(cfg.FuncID(fn), i, tkey) == ParamNone {
							site.via = fn.Name()
							continue
						}
					}
				}
				delete(s, site.id)
			}
		case *ast.AssignStmt:
			for _, l := range v.Lhs {
				switch lt := ast.Unparen(l).(type) {
				case *ast.Ident:
					// Reassignment target: handled by transfer.
				case *ast.SelectorExpr:
					if live(lt.X) == nil {
						scanExpr(lt.X)
					}
					// o.field = x: writing a field of the resource is
					// benign; x scans below via Rhs.
				default:
					scan(l)
				}
			}
			for _, r := range v.Rhs {
				scanExpr(r)
			}
		case *ast.FuncLit:
			// Closure capture: any tracked variable referenced inside
			// escapes to the closure's lifetime.
			ast.Inspect(v.Body, func(y ast.Node) bool {
				if id, ok := y.(*ast.Ident); ok {
					kill(id)
				}
				return true
			})
		default:
			if x == nil {
				return
			}
			// Generic traversal: walk children through ast.Inspect one
			// level at a time is awkward, so fall back to a full walk
			// that re-dispatches on the interesting node kinds.
			ast.Inspect(x, func(y ast.Node) bool {
				if y == x {
					return true
				}
				switch y.(type) {
				case *ast.Ident, *ast.ParenExpr, *ast.SelectorExpr, *ast.BinaryExpr,
					*ast.CallExpr, *ast.AssignStmt, *ast.FuncLit:
					scan(y)
					return false
				}
				return true
			})
		}
	}
	scan(n)
}

// refine kills facts along branches that prove them dead: the Go
// error contract (`v, err := acquire(); if err != nil` means v is nil on
// the error branch) and explicit nil checks of the resource itself.
func (a *leakAnalysis) refine(blk *cfg.Block, e cfg.Edge, s posSet) posSet {
	if len(blk.Nodes) == 0 || (e.Kind != cfg.True && e.Kind != cfg.False) {
		return s
	}
	cond, ok := blk.Nodes[len(blk.Nodes)-1].(ast.Expr)
	if !ok {
		return s
	}
	// Error-predicate guards: `if os.IsNotExist(err)` (or errors.Is on
	// err) being true implies err != nil, which implies the companion
	// resource is nil on that branch — nothing to release.
	if call, isCall := ast.Unparen(cond).(*ast.CallExpr); isCall && e.Kind == cfg.True {
		if fn := calleeFunc(a.p.Info, call); fn != nil && errPredicateFunc(fn) && len(call.Args) >= 1 {
			if obj := a.objOf(call.Args[0]); obj != nil {
				if sites, isErr := a.errObjs[obj]; isErr {
					for _, site := range sites {
						delete(s, site.id)
					}
				}
			}
		}
		return s
	}
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return s
	}
	var other ast.Expr
	if isNilIdent(bin.Y) {
		other = bin.X
	} else if isNilIdent(bin.X) {
		other = bin.Y
	} else {
		return s
	}
	obj := a.objOf(other)
	if obj == nil {
		return s
	}
	// On which edge is `other` known nil?
	nilOnTrue := bin.Op == token.EQL
	onNilEdge := (nilOnTrue && e.Kind == cfg.True) || (!nilOnTrue && e.Kind == cfg.False)
	if sites, isErr := a.errObjs[obj]; isErr {
		// err non-nil ⇒ resource nil ⇒ nothing to release on that edge.
		errEdge := !onNilEdge
		if errEdge {
			for _, site := range sites {
				delete(s, site.id)
			}
		}
		return s
	}
	if site, tracked := a.byObj[obj]; tracked && onNilEdge {
		delete(s, site.id) // resource proven nil: nothing to release
	}
	return s
}

// errPredicateFunc matches the error predicates whose truth implies a
// non-nil error argument: os.IsNotExist and friends, and errors.Is
// (errors.Is(nil, target) is false for any non-nil target and the nil
// target is never used to gate a cleanup path).
func errPredicateFunc(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		switch fn.Name() {
		case "IsNotExist", "IsExist", "IsPermission", "IsTimeout":
			return true
		}
	case "errors":
		return fn.Name() == "Is" || fn.Name() == "As"
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// sortSiteIDs orders site ids deterministically (they are position
// strings, so lexical order tracks source order closely enough).
func sortSiteIDs(ids []string) { sort.Strings(ids) }
