package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ruleMemGrant keeps operator code on the memory governor's grant API.
// The legacy static budget knob (Cluster.MemBudget) still exists so old
// configurations keep working, but operator and runtime code must size
// working memory from its task grant (TaskContext.Mem.Granted/Grow), not
// by reading the static field: a static read bypasses admission control
// and the shared-pool accounting the governor maintains. Writes (config
// wiring, defaulting) are allowed; reads in operator packages are not.
func ruleMemGrant() *Rule {
	return &Rule{
		Name: "mem-grant",
		Doc:  "operator code must size working memory from governor grants, not by reading the static MemBudget knob",
		Run:  runMemGrant,
	}
}

func runMemGrant(c *Config, p *Package, report func(token.Pos, string)) {
	inScope := false
	for _, pkg := range c.OperatorPkgs {
		if p.Path == pkg {
			inScope = true
			break
		}
	}
	if !inScope || c.MemBudgetField == "" {
		return
	}
	for _, f := range p.Files {
		// Selector expressions appearing on an assignment's LHS are
		// writes (config wiring) and stay legal.
		writes := map[*ast.SelectorExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					writes[sel] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != c.MemBudgetField || writes[sel] {
				return true
			}
			s, ok := p.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			report(sel.Pos(), "reading the static "+c.MemBudgetField+" knob bypasses admission control; "+
				"size working memory from the task's grant (TaskContext.Mem.Granted/Grow)")
			return true
		})
	}
}
