package main

import (
	"go/ast"
	"go/token"
)

// ruleFaultGate keeps fault injection out of production control flow:
// outside the fault package itself, non-test code may only call the
// guarded probe helpers (Hit, Tear, Armed, ...) whose disarmed cost is a
// single atomic load and whose behavior is a no-op. Arming, seeding, and
// disarming the registry change global state for the whole process and
// belong to tests and explicitly-marked harnesses (the loader already
// skips _test.go files, so this rule only sees production code).
func ruleFaultGate() *Rule {
	return &Rule{
		Name: "fault-gate",
		Doc:  "production code may only use guarded fault probes (fault.Hit/Tear/Armed); arming faults belongs to tests",
		Run:  runFaultGate,
	}
}

func runFaultGate(c *Config, p *Package, report func(token.Pos, string)) {
	if p.Path == c.FaultPkgPath {
		return // the registry's own implementation
	}
	guarded := map[string]bool{}
	for _, name := range c.FaultGuarded {
		guarded[name] = true
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != c.FaultPkgPath {
				return true
			}
			if guarded[fn.Name()] {
				return true
			}
			report(call.Pos(), "fault."+fn.Name()+" mutates the process-wide fault registry; "+
				"production code must stick to guarded probes ("+guardedList(c)+") — arm faults from tests or ASTERIX_FAULTS")
			return true
		})
	}
}

func guardedList(c *Config) string {
	s := ""
	for i, name := range c.FaultGuarded {
		if i > 0 {
			s += ", "
		}
		s += name
	}
	return s
}
