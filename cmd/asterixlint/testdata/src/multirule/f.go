// Package multirule pins the suppression semantics for lines carrying
// findings from more than one rule: the comma form names both rules in
// one directive, and a stack of single-rule directives chains down so
// every directive in the stack reaches the statement below it.
package multirule

import "context"

type Res struct{}

func (r *Res) Release() {}

type Pool struct{}

func (p *Pool) AcquireCtx(ctx context.Context) (*Res, error) {
	_ = ctx
	return &Res{}, nil
}

// Unsuppressed control: both rules fire on the acquire line.
func control(ctx context.Context, p *Pool) {
	r, _ := p.AcquireCtx(context.Background()) // WANT resource-leak ctx-flow
	if r == nil {
		return
	}
}

// One directive, two rules, comma-separated.
func commaForm(ctx context.Context, p *Pool) {
	//lint:ignore resource-leak,ctx-flow fixture: both rules on one line
	r, _ := p.AcquireCtx(context.Background())
	if r == nil {
		return
	}
}

// Two stacked single-rule directives both reach the statement below
// the stack — previously only the bottom directive applied.
func stacked(ctx context.Context, p *Pool) {
	//lint:ignore resource-leak fixture: leak is intentional
	//lint:ignore ctx-flow fixture: detached by design
	r, _ := p.AcquireCtx(context.Background())
	if r == nil {
		return
	}
}
