package lockheld

import (
	"os"
	"sync"
	"time"
)

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	wg sync.WaitGroup
}

func (s *S) sendLocked() {
	s.mu.Lock()
	s.ch <- 1 // WANT lock-held
	s.mu.Unlock()
}

func (s *S) recvLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // WANT lock-held
}

func (s *S) selectLocked() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	select { // WANT lock-held
	case <-s.ch:
	}
}

func (s *S) rangeLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for range s.ch { // WANT lock-held
	}
}

func (s *S) waitLocked() {
	s.mu.Lock()
	s.wg.Wait() // WANT lock-held
	s.mu.Unlock()
}

func (s *S) sleepLocked() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // WANT lock-held
	s.mu.Unlock()
}

func (s *S) ioLocked() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.Remove("x") // WANT lock-held
}

func (s *S) nonBlockingSelect() {
	s.mu.Lock()
	select {
	case s.ch <- 1:
	default:
	}
	s.mu.Unlock()
}

func (s *S) afterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1
}

func (s *S) condWait(c *sync.Cond) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.Wait() // Cond.Wait requires the lock by contract: exempt
}

func (s *S) goroutineBodyIsFresh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1 // runs on its own stack without the lock
	}()
}

func (s *S) predicateOK() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := os.Stat("x") // WANT lock-held
	return os.IsNotExist(err)
}

func (s *S) suppressed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lock-held fixture: ordering requires the lock across the send
	s.ch <- 1
}
