// Fixture for wait-attrib coverage of transport blocking calls. The
// net.Conn methods dispatch through an interface — the concrete conn
// lives outside the module, so no callee summary exists — and the
// BlockExt whitelist must still see them block by declared symbol.
package waitnet

import (
	"net"
	"time"
)

// TC stands in for the real TaskContext.
type TC struct{}

// AddWait is the registered attribution sink.
func (TC) AddWait(d time.Duration) {}

// SendFrames is the registered wait root: the executor-style pattern —
// time the whole write, charge it to the task — covers the interface
// call, so only the bare read in the helper is a finding.
func SendFrames(tc TC, c net.Conn, frame []byte) error {
	t0 := time.Now()
	_, err := c.Write(frame)
	tc.AddWait(time.Since(t0))
	if err != nil {
		return err
	}
	return readAck(c)
}

// readAck blocks on the conn with no attribution; the finding surfaces
// at the interface call with the chain from the root.
func readAck(c net.Conn) error {
	var buf [1]byte
	_, err := c.Read(buf[:]) // WANT wait-attrib
	return err
}
