// Fixture for the interprocedural half of the resource-leak rule:
// passing a tracked resource to a helper is no longer a blanket
// ownership transfer — the helper's summary decides. Only helpers that
// release the resource or keep/return it discharge the caller's
// obligation.
package resleakip

// Pool hands out resources that must be released.
type Pool struct{}

// Res is the tracked resource type.
type Res struct{ open bool }

// Acquire is the registered acquire function.
func (p *Pool) Acquire() *Res { return &Res{open: true} }

// Release is the registered release.
func (r *Res) Release() { r.open = false }

// LeakViaHelper passes the resource to a helper that neither releases
// nor keeps it, so the caller still owns it and leaks it (true
// positive — the old blanket transfer rule missed this).
func LeakViaHelper(p *Pool) {
	r := p.Acquire() // WANT resource-leak
	touch(r)
}

// touch inspects the resource without discharging it.
func touch(r *Res) bool { return r.open }

// OkViaReleasingHelper delegates the release (true negative).
func OkViaReleasingHelper(p *Pool) {
	r := p.Acquire()
	closeIt(r)
}

func closeIt(r *Res) { r.Release() }

// OkViaKeepingHelper transfers ownership to a helper that stores the
// resource; the caller's obligation moves with it (true negative).
func OkViaKeepingHelper(p *Pool) {
	r := p.Acquire()
	register(r)
}

var registry []*Res

func register(r *Res) { registry = append(registry, r) }

// SuppressedLeak documents an intentional leak-shaped pattern.
func SuppressedLeak(p *Pool) {
	//lint:ignore resource-leak handed to the process-lifetime registry, reclaimed only at shutdown
	r := p.Acquire()
	touch(r)
}
