// Package resleak exercises the resource-leak rule: a value produced by
// a registered acquire must reach one of its releases on every path out
// of the acquiring function. The test retargets Config.Resources at the
// Pool/Res pair below plus the real os.Open entry.
package resleak

import (
	"errors"
	"os"
)

var errTooBig = errors.New("too big")

type Res struct{ n int }

func (r *Res) Release() {}

type Pool struct{}

func (p *Pool) Acquire() (*Res, error) { return &Res{}, nil }

// The errTooBig return path leaks r; the happy path transfers ownership
// to the caller, which is not a leak.
func leakOnErrorPath(p *Pool) (*Res, error) {
	r, err := p.Acquire() // WANT resource-leak
	if err != nil {
		return nil, err
	}
	if r.n > 10 {
		return nil, errTooBig
	}
	return r, nil
}

// The err != nil branch means r is nil: returning there is clean.
func errContract(p *Pool) error {
	r, err := p.Acquire()
	if err != nil {
		return err
	}
	r.Release()
	return nil
}

// defer releases on every path, early returns included.
func deferred(p *Pool) (int, error) {
	r, err := p.Acquire()
	if err != nil {
		return 0, err
	}
	defer r.Release()
	if r.n > 10 {
		return 0, errTooBig
	}
	return r.n, nil
}

// Discarding the resource outright can never be released.
func discarded(p *Pool) {
	_, _ = p.Acquire() // WANT resource-leak
}

func dropped(p *Pool) {
	p.Acquire() // WANT resource-leak
}

// The skip path returns without closing the file.
func openLeak(path string, skip bool) error {
	f, err := os.Open(path) // WANT resource-leak
	if err != nil {
		return err
	}
	if skip {
		return nil
	}
	return f.Close()
}

func openClean(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

// os.IsNotExist(err) being true implies err != nil, so f is nil on
// that branch: returning there is clean.
func notExistGuard(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// An explicit panic is an exit path too.
func panicLeak(p *Pool, bad bool) *Res {
	r, err := p.Acquire() // WANT resource-leak
	if err != nil {
		return nil
	}
	if bad {
		panic("resleak fixture")
	}
	return r
}

type holder struct{ r *Res }

// Storing into a longer-lived structure transfers ownership.
func stash(p *Pool, h *holder) error {
	r, err := p.Acquire()
	if err != nil {
		return err
	}
	h.r = r
	return nil
}

// Passing to another function transfers ownership.
func handOff(p *Pool) error {
	r, err := p.Acquire()
	if err != nil {
		return err
	}
	consume(r)
	return nil
}

func consume(r *Res) { r.Release() }

// Capture by a closure transfers ownership to the closure's lifetime.
func capture(p *Pool) (func(), error) {
	r, err := p.Acquire()
	if err != nil {
		return nil, err
	}
	return func() { r.Release() }, nil
}

// A nil check proves the resource absent on the guarded branch.
func nilGuardRelease(p *Pool) {
	r, _ := p.Acquire()
	if r == nil {
		return
	}
	r.Release()
}

// Intentional leak, documented and suppressed.
func suppressed(p *Pool) {
	r, _ := p.Acquire() //lint:ignore resource-leak fixture: reclaimed by the pool finalizer
	if r == nil {
		return
	}
}

// Reassignment in a loop: each handle is closed before the next open.
func reopen(paths []string) error {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		f.Close()
	}
	return nil
}
