// Fixture for the stale-suppression audit: a reasoned //lint:ignore
// that still suppresses a finding stays silent, while one covering code
// that no longer trips its rule is itself reported (warn by default,
// -strict-suppressions promotes it to a failure).
package stalesup

import "os"

// live keeps its directive earning its keep: the discard below would be
// an err-discard finding without it.
func live(path string) {
	//lint:ignore err-discard fixture: deliberate best-effort cleanup
	os.Remove(path)
}

// stale's directive covers code that stopped discarding the error long
// ago, so the directive itself is the finding now.
func stale(path string) error {
	//lint:ignore err-discard fixture: the discard this once covered was fixed, leaving the directive dead // WANT stale-suppression
	return os.Remove(path)
}
