// Package memgrant is the fixture for the mem-grant rule: the test points
// Config.OperatorPkgs at this package, with Cluster standing in for
// hyracks.Cluster. Operator code must size its working memory from the
// task's governor grant; reading the legacy static MemBudget knob bypasses
// admission control. Writing the knob (config wiring) stays legal.
package memgrant

type Cluster struct {
	MemBudget int
	FrameSize int
}

type grant struct{ n int }

func (g *grant) Granted() int    { return g.n }
func (g *grant) Grow(n int) bool { g.n += n; return true }

type taskCtx struct {
	Mem *grant
}

func badRead(c *Cluster) int {
	return c.MemBudget // WANT mem-grant
}

func badReadInExpr(c *Cluster, used int) bool {
	return used > c.MemBudget/2 // WANT mem-grant
}

func badReadThroughLocal(c *Cluster) {
	budget := c.MemBudget // WANT mem-grant
	_ = budget
}

func goodWrite(c *Cluster) {
	c.MemBudget = 32 << 20
}

func goodCompositeWrite() *Cluster {
	return &Cluster{MemBudget: 32 << 20, FrameSize: 256}
}

func goodGrantSizing(tc *taskCtx, used int) bool {
	for used > tc.Mem.Granted() {
		if !tc.Mem.Grow(256 << 10) {
			return false
		}
	}
	return true
}

// A field with the same name on an unrelated type is untouched by the
// rule only via suppression-free matching on the field name, so it is
// flagged too — the knob name is reserved in operator packages.
type otherConfig struct{ MemBudget int }

func suppressedRead(c *Cluster) int {
	//lint:ignore mem-grant fixture: the one sanctioned legacy fold
	return c.MemBudget
}

func unrelatedRead(o otherConfig) int {
	return o.MemBudget // WANT mem-grant
}
