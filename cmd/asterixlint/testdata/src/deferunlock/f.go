// Package deferunlock exercises the flow-sensitive defer-unlock rule:
// every Lock must reach an Unlock (or defer Unlock) on all return paths.
package deferunlock

import (
	"errors"
	"sync"
)

var errFailed = errors.New("failed")

type S struct {
	mu sync.Mutex
	n  int
}

type R struct {
	mu sync.RWMutex
	n  int
}

// The early return leaks the lock.
func (s *S) leakOnEarlyReturn() int {
	s.mu.Lock() // WANT defer-unlock
	if s.n > 0 {
		return s.n
	}
	s.mu.Unlock()
	return 0
}

// defer covers every path, including the early return.
func (s *S) deferred() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n > 0 {
		return s.n
	}
	return 0
}

// Explicit unlock on each path is fine too.
func (s *S) bothPaths() int {
	s.mu.Lock()
	if s.n > 0 {
		v := s.n
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return 0
}

// A read lock leaks on the error path just as surely.
func (r *R) rlockLeak(fail bool) (int, error) {
	r.mu.RLock() // WANT defer-unlock
	if fail {
		return 0, errFailed
	}
	v := r.n
	r.mu.RUnlock()
	return v, nil
}

// TryLock acquires on its success branch; the inner return leaks it.
func (s *S) tryLeak() bool {
	if s.mu.TryLock() { // WANT defer-unlock
		if s.n > 0 {
			return true
		}
		s.mu.Unlock()
	}
	return false
}

// The negated guard form, handled by branch polarity.
func (s *S) tryGood() int {
	if !s.mu.TryLock() {
		return -1
	}
	defer s.mu.Unlock()
	return s.n
}

// Lock/unlock balanced around continue and the loop back edge.
func (s *S) loop(xs []int) int {
	total := 0
	for _, x := range xs {
		s.mu.Lock()
		if x < 0 {
			s.mu.Unlock()
			continue
		}
		total += x
		s.mu.Unlock()
	}
	return total
}

// lockForCaller hands the locked mutex to its caller by contract.
func (s *S) lockForCaller() {
	s.mu.Lock() //lint:ignore defer-unlock callers unlock via (*S).unlock when done
}

func (s *S) unlock() {
	s.mu.Unlock()
}
