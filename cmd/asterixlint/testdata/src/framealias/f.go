// Package framealias is the fixture for the frame-alias rule: the test
// points Config.TuplePkgPath at this package, with Tuple standing in for
// hyracks.Tuple. A frame ([]Tuple) sent over a channel must not be
// mutated afterwards unless it is reset to a fresh buffer first.
package framealias

type Tuple []int

func badAppend(ch chan []Tuple, buf []Tuple, t Tuple) {
	ch <- buf
	buf = append(buf, t) // WANT frame-alias
	_ = buf
}

func badIndex(ch chan []Tuple, buf []Tuple, t Tuple) {
	ch <- buf
	buf[0] = t // WANT frame-alias
}

func badReslice(ch chan []Tuple, buf []Tuple) {
	ch <- buf
	buf = buf[:0] // WANT frame-alias
	_ = buf
}

func goodReset(ch chan []Tuple, buf []Tuple, t Tuple) {
	ch <- buf
	buf = nil
	buf = append(buf, t)
	_ = buf
}

func goodMake(ch chan []Tuple, buf []Tuple, t Tuple) {
	ch <- buf
	buf = make([]Tuple, 0, 8)
	buf = append(buf, t)
	_ = buf
}

func send(ch chan []Tuple, f []Tuple) { ch <- f }

func badViaHelper(ch chan []Tuple, buf []Tuple, t Tuple) {
	send(ch, buf)
	buf = append(buf, t) // WANT frame-alias
	_ = buf
}

func suppressed(ch chan []Tuple, buf []Tuple, t Tuple) {
	ch <- buf
	//lint:ignore frame-alias fixture: consumer drains synchronously before reuse
	buf = append(buf, t)
	_ = buf
}
