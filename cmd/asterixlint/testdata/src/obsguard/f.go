// Package obsguard is the fixture for the obs-nil guard-discipline half:
// the test points Config.ObsPkgPath at this package with H as the handle
// type, standing in for internal/obs.
package obsguard

import "sync/atomic"

// H is a nil-safe handle type.
type H struct {
	v int64
}

func (h *H) Good() int64 {
	if h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.v)
}

func (h *H) GoodReturnForm() bool {
	return h != nil && atomic.LoadInt64(&h.v) != 0
}

func (h *H) GoodLateButBeforeUse() int64 {
	out := int64(7)
	if h == nil {
		return out
	}
	return out + h.v
}

// Delegate calls only exported (hence nil-safe) methods: no guard needed.
func (h *H) Delegate() int64 { return h.Good() }

func (h *H) Bad() int64 {
	return atomic.LoadInt64(&h.v) // WANT obs-nil
}

func (h *H) BadGuardAfterUse() int64 {
	v := h.v // WANT obs-nil
	if h == nil {
		return 0
	}
	return v
}

func (h *H) BadGuardNoReturn() int64 {
	if h == nil { // guard body must exit the method
		println("nil")
	}
	return h.v // WANT obs-nil
}

// unexported methods carry no contract.
func (h *H) internal() int64 { return h.v }

// Suppressed documents a deliberate exception.
func (h *H) Suppressed() int64 {
	//lint:ignore obs-nil fixture: testing the suppression path
	return h.v
}
