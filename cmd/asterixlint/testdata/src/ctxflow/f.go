// Package ctxflow exercises the ctx-flow rule: a function that receives
// a context.Context must thread it (or a context derived from it) into
// the context-taking calls it makes, rather than minting a fresh root.
package ctxflow

import (
	"context"
	"sync"
	"time"
)

type key struct{}

func work(ctx context.Context) error {
	_ = ctx
	return nil
}

// Passing the parameter straight through is the baseline.
func threads(ctx context.Context) error {
	return work(ctx)
}

// Deriving through context.With* keeps the chain intact.
func derives(ctx context.Context) error {
	c, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return work(c)
}

// Minting a fresh root launders the caller's deadline away.
func launders(ctx context.Context) error {
	return work(context.Background()) // WANT ctx-flow
}

// Reassigning the parameter poisons every use downstream of it.
func clobbers(ctx context.Context) error {
	ctx = context.Background() // WANT ctx-flow
	return work(ctx)           // WANT ctx-flow
}

// Re-deriving restores the chain: only the minting itself is flagged.
func rederives(ctx context.Context) error {
	c := context.Background() // WANT ctx-flow
	c = context.WithValue(ctx, key{}, 1)
	return work(c)
}

// Laundering inside a goroutine closure is still laundering.
func spawns(ctx context.Context, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = work(context.TODO()) // WANT ctx-flow
	}()
}

// A literal with its own ctx parameter is an independent unit.
func ownUnit(ctx context.Context) func(context.Context) error {
	_ = ctx
	return func(ctx context.Context) error {
		return work(ctx)
	}
}

// No ctx parameter: minting a root here is legitimate.
func noCtx() error {
	return work(context.Background())
}

// A deliberately detached task, documented and suppressed; the
// directive covers both the minting line and the use below it.
func detached(ctx context.Context) error {
	bg := context.Background() //lint:ignore ctx-flow the audit task must outlive the request
	return work(bg)
}
