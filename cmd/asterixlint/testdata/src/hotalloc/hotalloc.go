// Fixture for the interprocedural hot-alloc rule. HotKernel is
// registered as a hot root by the test config; allocations reachable
// from it — directly or through callees — are findings unless a callee
// is proven allocation-free or a reasoned lint:ignore barrier stops the
// walk.
package hotalloc

import "fmt"

type pair struct{ a, b int }

// HotKernel is the registered hot root.
func HotKernel(x int) int {
	p := &pair{a: x, b: x} // WANT hot-alloc
	n := pureHelper(p.a)
	n += allocHelper(x)
	//lint:ignore hot-alloc cold diagnostics subtree, exercised only on corrupt input
	n += coldHelper(x)
	return n
}

// pureHelper is transitively allocation-free: calling it from the hot
// root is fine (true negative).
func pureHelper(x int) int {
	if x < 0 {
		return -x
	}
	return x * 2
}

// allocHelper allocates; the findings surface at its sites with the
// call chain from the root (true positives — one external call, plus
// the interface boxing of its argument).
func allocHelper(x int) int {
	s := fmt.Sprintf("%d", x) // WANT hot-alloc
	return len(s)
}

// coldHelper allocates too, but the call into it carries a reasoned
// barrier directive, so nothing below it is reported.
func coldHelper(x int) int {
	b := make([]byte, x)
	return len(b)
}
