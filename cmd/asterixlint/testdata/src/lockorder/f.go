// Package lockorder exercises the repo-global lock-order rule: nested
// blocking acquisitions contribute edges to an acquisition graph keyed
// by (package, type, field), and any cycle is a potential deadlock.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

var (
	a A
	b B
	c C
	d D
	e E
	f F
)

// lockAB and lockBA disagree on order: the A.mu ↔ B.mu cycle is
// reported at the acquisition closing the lexically-first edge.
func lockAB() {
	a.mu.Lock()
	b.mu.Lock() // WANT lock-order
	b.mu.Unlock()
	a.mu.Unlock()
}

func lockBA() {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// Consistent nesting is clean, including under a deferred unlock
// (which keeps the outer lock held for ordering purposes).
func lockCD() {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	d.mu.Unlock()
}

func lockCDAgain() {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

// TryLock cannot close a cycle: a deadlock needs every participant to
// block, and TryLock never blocks.
func tryDC() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c.mu.TryLock() {
		c.mu.Unlock()
	}
}

// A known, documented cycle is suppressed at its anchor.
func lockEF() {
	e.mu.Lock()
	f.mu.Lock() //lint:ignore lock-order fixture: documented benign cycle
	f.mu.Unlock()
	e.mu.Unlock()
}

func lockFE() {
	f.mu.Lock()
	e.mu.Lock()
	e.mu.Unlock()
	f.mu.Unlock()
}
