// Fixture for the pool-safety rule family. The harness registers Pool
// as a buffer pool (Get/Put) with Rec as its named element type, so
// helper parameters of type Rec get interprocedural kept/released
// classification and functions returning a Get result verbatim are
// producers whose callers inherit the Put obligation.
package poolsafety

import "errors"

var errSome = errors.New("boom")

// Rec is the pooled container type.
type Rec []int

// Pool hands out Rec containers that should flow back through Put.
type Pool struct{}

// Get draws a container from the pool.
func (p *Pool) Get() Rec { return make(Rec, 0, 8) }

// Put returns a container to the pool.
func (p *Pool) Put(r Rec) { _ = r }

// --- pool-use-after-put ---

// UseAfterPut touches the container after recycling it (true positive).
func UseAfterPut(p *Pool) int {
	r := p.Get()
	r = append(r, 1)
	p.Put(r)
	return r[0] // WANT pool-use-after-put
}

// UseAfterPutViaHelper loans the dead container to a callee (true
// positive: a loan is still a use).
func UseAfterPutViaHelper(p *Pool) int {
	r := p.Get()
	p.Put(r)
	return touch(r) // WANT pool-use-after-put
}

// BranchExclusive puts on both arms of a branch; the use on the second
// arm precedes its put (true negative — flow-sensitivity keeps the
// mutually exclusive paths apart).
func BranchExclusive(p *Pool, done bool) int {
	r := p.Get()
	if done {
		p.Put(r)
		return 0
	}
	n := len(r)
	p.Put(r)
	return n
}

// SuppressedUseAfterPut documents a deliberate post-Put read.
func SuppressedUseAfterPut(p *Pool) int {
	r := p.Get()
	p.Put(r)
	//lint:ignore pool-use-after-put fixture: the harness pool is single-threaded and never re-hands the container
	return len(r)
}

// --- pool-double-put ---

// DoublePut recycles the same container twice (true positive).
func DoublePut(p *Pool) {
	r := p.Get()
	p.Put(r)
	p.Put(r) // WANT pool-double-put
}

// DeferredDoublePut puts inline under a pending deferred Put (true
// positive).
func DeferredDoublePut(p *Pool) {
	r := p.Get()
	defer p.Put(r)
	p.Put(r) // WANT pool-double-put
}

// DeferPut recycles exactly once, at exit, on every path (true
// negative).
func DeferPut(p *Pool, fail bool) error {
	r := p.Get()
	defer p.Put(r)
	if fail {
		return errSome
	}
	return nil
}

// SuppressedDoublePut documents an intentional second Put.
func SuppressedDoublePut(p *Pool) {
	r := p.Get()
	p.Put(r)
	//lint:ignore pool-double-put fixture: exercising the suppression path of the double-put finding
	p.Put(r)
}

// --- pool-missing-put ---

// MissingPutOnError forgets the container on the error path (true
// positive — the classic bug this rule exists for).
func MissingPutOnError(p *Pool, fail bool) error {
	r := p.Get() // WANT pool-missing-put
	r = append(r, 1)
	if fail {
		return errSome
	}
	p.Put(r)
	return nil
}

// DiscardGet can never return the container (true positive at the
// acquisition itself).
func DiscardGet(p *Pool) {
	_ = p.Get() // WANT pool-missing-put
}

// BareGet drops the container without even binding it (true positive).
func BareGet(p *Pool) {
	p.Get() // WANT pool-missing-put
}

// LeakViaLoan passes the container to a helper that only borrows it, so
// the Put is still owed here (true positive — interprocedural loans).
func LeakViaLoan(p *Pool) {
	r := p.Get() // WANT pool-missing-put
	touch(r)
}

// touch borrows the container: it neither keeps nor releases it.
func touch(r Rec) int { return len(r) }

// OkViaReleasingHelper delegates the Put to a helper whose summary
// resolves the parameter released (true negative).
func OkViaReleasingHelper(p *Pool) {
	r := p.Get()
	r = append(r, 7)
	finish(p, r)
}

func finish(p *Pool, r Rec) { p.Put(r) }

// OkViaKeepingHelper transfers ownership to a helper that stores the
// container; the obligation moves with it (true negative).
func OkViaKeepingHelper(p *Pool) {
	r := p.Get()
	stash(r)
}

var stashed []Rec

func stash(r Rec) { stashed = append(stashed, r) }

// SendHandsOff transfers ownership over a channel: the consumer owns
// the Put now (true negative).
func SendHandsOff(p *Pool, ch chan Rec) {
	r := p.Get()
	r = append(r, 1)
	ch <- r
}

// ResliceView reads halves out of the container through untracked views
// before recycling it (true negative — the merge-loop idiom).
func ResliceView(p *Pool) int {
	r := p.Get()
	r = append(r, 1, 2)
	k := r[:1]
	n := k[0]
	p.Put(r)
	return n
}

// NilRefined only ever puts a container that was proven non-nil (true
// negative — nil-branch refinement).
func NilRefined(p *Pool, ok bool) {
	var r Rec
	if ok {
		r = p.Get()
	}
	if r == nil {
		return
	}
	p.Put(r)
}

// SuppressedMissingPut documents a deliberate drop.
func SuppressedMissingPut(p *Pool) {
	//lint:ignore pool-missing-put fixture: deliberately dropped — the GC reclaims the container, only pooling efficiency is lost
	r := p.Get()
	touch(r)
}

// --- pool-escape-past-put ---

var sink []Rec

// EscapePastPut stores the container as a slice element and then
// recycles it out from under that owner (true positive).
func EscapePastPut(p *Pool) {
	r := p.Get()
	sink = append(sink, r)
	p.Put(r) // WANT pool-escape-past-put
}

// SendThenPut hands the container to a consumer and recycles it anyway
// (true positive).
func SendThenPut(p *Pool, ch chan Rec) {
	r := p.Get()
	ch <- r
	p.Put(r) // WANT pool-escape-past-put
}

// StoreThenPut parks the container in a struct field before recycling
// it (true positive).
type Holder struct{ r Rec }

func StoreThenPut(p *Pool, h *Holder) {
	r := p.Get()
	h.r = r
	p.Put(r) // WANT pool-escape-past-put
}

// GoThenPut hands the container to a goroutine and recycles it while
// the goroutine may still read it (true positive).
func GoThenPut(p *Pool) {
	r := p.Get()
	go goTouch(r)
	p.Put(r) // WANT pool-escape-past-put
}

func goTouch(r Rec) { _ = len(r) }

// SuppressedEscapePastPut documents a synchronization the analysis
// cannot see.
func SuppressedEscapePastPut(p *Pool, ch chan Rec) {
	r := p.Get()
	ch <- r
	//lint:ignore pool-escape-past-put fixture: the consumer drains the channel before the pool can re-hand the container
	p.Put(r)
}

// --- producer summaries ---

// NewRec is a producer: it returns the pooled container it drew, so its
// summary carries a Pooled fact and the caller owes the Put.
func NewRec(p *Pool) Rec {
	r := p.Get()
	r = append(r, 0)
	return r
}

// NewRecErr is a producer with the error contract: on error the
// container is recycled here and the caller gets nil.
func NewRecErr(p *Pool, fail bool) (Rec, error) {
	r := p.Get()
	if fail {
		p.Put(r)
		return nil, errSome
	}
	return r, nil
}

// nextRec is a producer with the ok contract: ok=false means no
// container was handed out.
func nextRec(p *Pool, more bool) (Rec, bool) {
	if !more {
		return nil, false
	}
	r := p.Get()
	return r, true
}

// ProducerCallerLeak drops a produced container (true positive — the
// summary moves the obligation here).
func ProducerCallerLeak(p *Pool) {
	r := NewRec(p) // WANT pool-missing-put
	touch(r)
}

// ProducerCallerOk returns the produced container to the pool (true
// negative).
func ProducerCallerOk(p *Pool) {
	r := NewRec(p)
	touch(r)
	p.Put(r)
}

// ProducerErrOk honors the error contract: nothing to put on the error
// path (true negative).
func ProducerErrOk(p *Pool, fail bool) error {
	r, err := NewRecErr(p, fail)
	if err != nil {
		return err
	}
	p.Put(r)
	return nil
}

// ProducerOkOk honors the ok contract (true negative).
func ProducerOkOk(p *Pool) {
	r, ok := nextRec(p, true)
	if !ok {
		return
	}
	p.Put(r)
}
