// Package obsnil is the fixture for the obs-nil call-site half: code
// outside internal/obs must not branch on handle nil-ness, because every
// handle method is a nil-safe no-op.
package obsnil

import "asterix/internal/obs"

func bad(sp *obs.Span) {
	if sp != nil { // WANT obs-nil
		sp.End()
	}
}

func badEq(c *obs.Counter) {
	if c == nil { // WANT obs-nil
		return
	}
	c.Inc()
}

func good(sp *obs.Span, c *obs.Counter) {
	defer sp.End()
	c.Inc()
}

func suppressed(sp *obs.Span) bool {
	//lint:ignore obs-nil fixture: testing the suppression path
	return sp == nil
}

func otherNilChecksFine(p *int) bool {
	return p != nil
}
