// Fixture for the interprocedural wait-attrib rule. RunTask is
// registered as a wait root and TC.AddWait as the attribution sink by
// the test config; blocking calls reachable from the root must be
// covered by attribution.
package waitattrib

import "time"

// TC stands in for the real TaskContext.
type TC struct{}

// AddWait is the registered attribution sink.
func (TC) AddWait(d time.Duration) {}

var ch = make(chan int, 1)

// RunTask is the registered wait root.
func RunTask(tc TC) {
	helperAttributed(tc)
	helperUnattributed()
	//lint:ignore wait-attrib test-only stall injected by the harness, never reached in production tasks
	helperCold()
	<-ch // WANT wait-attrib
}

// helperAttributed blocks but routes the time through AddWait in the
// same block (true negative).
func helperAttributed(tc TC) {
	t0 := time.Now()
	time.Sleep(time.Millisecond)
	tc.AddWait(time.Since(t0))
}

// helperUnattributed blocks with no attribution; the finding surfaces
// at the blocking site with the chain from the root (true positive).
func helperUnattributed() {
	time.Sleep(time.Millisecond) // WANT wait-attrib
}

// helperCold blocks too, but the call into it carries a reasoned
// barrier directive.
func helperCold() {
	time.Sleep(time.Millisecond)
}
