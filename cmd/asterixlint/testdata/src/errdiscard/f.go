package errdiscard

import (
	"fmt"
	"os"
)

func bad(path string) {
	os.Remove(path)       // WANT err-discard
	_ = os.Remove(path)   // WANT err-discard
	defer os.Remove(path) // WANT err-discard
	go os.Remove(path)    // WANT err-discard
	f, _ := os.Open(path) // WANT err-discard
	_ = f
}

func good(path string) error {
	if err := os.Remove(path); err != nil {
		return err
	}
	//lint:ignore err-discard fixture: deliberate best-effort cleanup
	os.Remove(path)
	os.Remove(path) //lint:ignore err-discard fixture: trailing form
	fmt.Println(path)
	return nil
}
