package goroutine

import (
	"context"
	"sync"
)

func bad() {
	go func() { // WANT go-lifecycle
		println("orphan")
	}()
}

func suppressed() {
	//lint:ignore go-lifecycle fixture: daemon by design
	go func() {
		println("daemon")
	}()
}

func withWG(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

func withChan(done chan struct{}) {
	go func() {
		close(done)
	}()
}

func withSend(out chan int) {
	go func() {
		out <- 1
	}()
}

func withCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func withChanArg(ch chan int) {
	go func(c chan int) {
		_ = c
	}(ch)
}

func named() {
	go println("named functions manage their own lifecycle")
}
