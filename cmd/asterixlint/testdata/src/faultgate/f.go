// Package faultgate is the fixture for the fault-gate rule: production
// code may probe fault points through the guarded helpers but must never
// arm, seed, or disarm the process-wide registry — that is test and
// harness territory.
package faultgate

import "asterix/internal/fault"

func badArm() error {
	return fault.Arm("lsm.flush.io:error") // WANT fault-gate
}

func badArmPoint() {
	fault.ArmPoint(fault.Point{Name: fault.PointLSMFlush}) // WANT fault-gate
}

func badDisarm() {
	fault.Disarm() // WANT fault-gate
}

func badSeed() {
	fault.Seed(42) // WANT fault-gate
}

func goodProbes(buf []byte) ([]byte, error) {
	if !fault.Armed() {
		return buf, nil
	}
	if err := fault.Hit(fault.PointLSMFlush); err != nil {
		return nil, err
	}
	if frag, torn := fault.Tear(fault.PointWALAppend, buf); torn {
		return frag, nil
	}
	return buf, nil
}

func goodObservers() (int64, bool) {
	_ = fault.Snapshot()
	return fault.Hits(fault.PointLSMMerge), fault.Fired(fault.PointLSMMerge) > 0
}

func suppressedHarness() {
	//lint:ignore fault-gate fixture: a marked harness may arm faults deliberately
	fault.Disarm()
}
