// Package directive exercises the malformed-suppression path: a
// lint:ignore with no reason is reported and does not suppress.
package directive

import "os"

func malformed(path string) {
	//lint:ignore err-discard
	os.Remove(path)
}
