package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ruleObsNil enforces the observability layer's nil-safety contract from
// both sides:
//
//   - inside the obs package, every exported pointer-receiver method on a
//     handle type (Span, Counter, ...) must nil-check the receiver before
//     touching its fields or unexported methods, so a nil handle is a
//     no-op rather than a panic;
//   - everywhere else, code must not compare a handle to nil — the whole
//     point of the contract is that call sites instrument unconditionally
//     and never branch on whether observability is wired.
func ruleObsNil() *Rule {
	return &Rule{
		Name: "obs-nil",
		Doc:  "obs handle methods must be nil-safe; call sites must not branch on nil handles",
		Run:  runObsNil,
	}
}

func runObsNil(c *Config, p *Package, report func(token.Pos, string)) {
	handles := map[string]bool{}
	for _, h := range c.ObsHandles {
		handles[h] = true
	}
	isHandle := func(t types.Type) (string, bool) {
		n := namedType(t)
		if n == nil || n.Obj().Pkg() == nil {
			return "", false
		}
		if n.Obj().Pkg().Path() == c.ObsPkgPath && handles[n.Obj().Name()] {
			return n.Obj().Name(), true
		}
		return "", false
	}

	if p.Path == c.ObsPkgPath {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
					continue
				}
				checkHandleMethod(p, fd, isHandle, report)
			}
		}
	}

	// Call-site half: no nil comparisons of handle-typed expressions
	// outside the obs package (where the guards themselves live).
	if p.Path == c.ObsPkgPath {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
				side, other := pair[0], pair[1]
				if id, ok := ast.Unparen(other).(*ast.Ident); !ok || id.Name != "nil" {
					continue
				}
				tv, ok := p.Info.Types[side]
				if !ok {
					continue
				}
				if _, ok := tv.Type.Underlying().(*types.Pointer); !ok {
					continue
				}
				if name, ok := isHandle(tv.Type); ok {
					report(be.Pos(), "branching on nil *"+name+": obs handle methods are nil-safe, call them unconditionally")
				}
			}
			return true
		})
	}
}

// checkHandleMethod verifies the nil-receiver guard discipline of one
// exported method on a handle type.
func checkHandleMethod(p *Package, fd *ast.FuncDecl, isHandle func(types.Type) (string, bool), report func(token.Pos, string)) {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return
	}
	recvIdent := fd.Recv.List[0].Names[0]
	recvObj := p.Info.Defs[recvIdent]
	if recvObj == nil {
		return
	}
	if _, ok := recvObj.Type().(*types.Pointer); !ok {
		return // value receivers cannot be nil
	}
	name, ok := isHandle(recvObj.Type())
	if !ok {
		return
	}

	guardPos := findNilGuard(p, fd.Body, recvObj)

	// Receiver uses that are calls to exported methods are safe without a
	// guard: those methods carry their own nil checks by this same rule.
	// Comparing the receiver itself to nil is also safe — no dereference.
	safe := map[*ast.Ident]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && (be.Op == token.EQL || be.Op == token.NEQ) {
			for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
				id1, ok1 := ast.Unparen(pair[0]).(*ast.Ident)
				id2, ok2 := ast.Unparen(pair[1]).(*ast.Ident)
				if ok1 && ok2 && p.Info.Uses[id1] == recvObj && id2.Name == "nil" {
					safe[id1] = true
				}
			}
			return true
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || p.Info.Uses[id] != recvObj {
			return true
		}
		if s, ok := p.Info.Selections[sel]; ok {
			if fn, ok := s.Obj().(*types.Func); ok && fn.Exported() {
				safe[id] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || p.Info.Uses[id] != recvObj || safe[id] {
			return true
		}
		if guardPos != token.NoPos && id.Pos() >= guardPos {
			return true
		}
		report(id.Pos(), "exported method (*"+name+")."+fd.Name.Name+
			" uses receiver before a nil guard; obs handles must be nil-safe")
		return false
	})
}

// findNilGuard returns the position of the method's nil-receiver guard:
// either `if recv == nil { ... return }` or a return expression containing
// `recv != nil`. NoPos if there is none.
func findNilGuard(p *Package, body *ast.BlockStmt, recvObj types.Object) token.Pos {
	isRecvNilCmp := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
				id1, ok1 := ast.Unparen(pair[0]).(*ast.Ident)
				id2, ok2 := ast.Unparen(pair[1]).(*ast.Ident)
				if ok1 && ok2 && p.Info.Uses[id1] == recvObj && id2.Name == "nil" {
					found = true
				}
			}
			return !found
		})
		return found
	}
	endsInReturn := func(b *ast.BlockStmt) bool {
		if len(b.List) == 0 {
			return false
		}
		_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
		return ok
	}
	pos := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if pos != token.NoPos {
			return false
		}
		switch s := n.(type) {
		case *ast.IfStmt:
			if isRecvNilCmp(s.Cond) && endsInReturn(s.Body) {
				pos = s.Pos()
				return false
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if isRecvNilCmp(r) {
					pos = s.Pos()
					return false
				}
			}
		}
		return true
	})
	return pos
}
