package main

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package under analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader parses and type-checks module packages from source, resolving
// stdlib imports through the go/importer source importer so the analyzer
// needs nothing outside the standard library.
type Loader struct {
	ModRoot string
	ModPath string

	fset     *token.FileSet
	std      types.Importer
	pkgs     map[string]*Package
	checking map[string]bool
}

// NewLoader locates the enclosing module (go.mod upward from dir).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "module ") {
			modPath = strings.TrimSpace(strings.TrimPrefix(line, "module "))
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot:  root,
		ModPath:  modPath,
		fset:     fset,
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     map[string]*Package{},
		checking: map[string]bool{},
	}, nil
}

// Fset returns the loader's shared FileSet: positions from every
// package it loads resolve through this one set, which is what lets
// cross-package rules carry token.Pos values between packages.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// dirForPath maps a module import path to its directory.
func (l *Loader) dirForPath(path string) string {
	if path == l.ModPath {
		return l.ModRoot
	}
	return filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/")))
}

// pathForDir maps a directory to its module import path.
func (l *Loader) pathForDir(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, l.ModRoot)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir loads the package in dir (non-test files only).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.pathForDir(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path)
}

func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	dir := l.dirForPath(path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	// Respect build constraints so mutually-exclusive tag variants (e.g.
	// the invariants on/off pair) don't both land in one package.
	bctx := build.Default
	bctx.Dir = dir
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := bctx.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go source files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Pkg: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Import implements types.Importer: module packages load from source here,
// everything else goes to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// ExpandPatterns resolves go-style package patterns ("./...", "./internal/lsm")
// into package directories, skipping testdata, hidden, and VCS trees.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if strings.HasSuffix(pat, "...") {
			root := strings.TrimSuffix(pat, "...")
			root = strings.TrimSuffix(root, "/")
			if root == "" || root == "." {
				root = l.ModRoot
			}
			err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
				if err != nil {
					return err
				}
				if fi.IsDir() {
					name := fi.Name()
					if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
						return filepath.SkipDir
					}
					return nil
				}
				if strings.HasSuffix(fi.Name(), ".go") && !strings.HasSuffix(fi.Name(), "_test.go") {
					add(filepath.Dir(path))
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			add(pat)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
