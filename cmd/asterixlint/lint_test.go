package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// The fixture harness loads a package from testdata/src/<name>, runs every
// rule over it, and compares the findings against `// WANT <rule>` markers
// in the fixture source. Fixtures cover each rule's positive cases, the
// patterns it must NOT flag, and a lint:ignore suppression.

var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

var wantRe = regexp.MustCompile(`//\s*WANT\s+([a-z-]+(?:[ ,]+[a-z-]+)*)`)

// wantMarkers parses the expectations out of every fixture file in dir,
// keyed "file.go:line" -> rule names.
func wantMarkers(t *testing.T, dir string) map[string][]string {
	t.Helper()
	want := map[string][]string{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", e.Name(), i+1)
			want[key] = append(want[key], strings.FieldsFunc(m[1], func(r rune) bool {
				return r == ' ' || r == ','
			})...)
		}
	}
	return want
}

// checkFixture runs all rules over the fixture package and diffs findings
// against the WANT markers. mutate retargets Config at fixture types.
func checkFixture(t *testing.T, name string, mutate func(cfg *Config, pkgPath string)) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	l := fixtureLoader(t)
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(cfg, pkg.Path)
	}
	diags := RunRules(cfg, pkg, AllRules())

	want := map[string]bool{}
	for key, rules := range wantMarkers(t, dir) {
		for _, r := range rules {
			want[key+":"+r] = true
		}
	}
	got := map[string]bool{}
	for _, d := range diags {
		got[fmt.Sprintf("%s:%d:%s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Rule)] = true
	}

	var missing, unexpected []string
	for k := range want {
		if !got[k] {
			missing = append(missing, k)
		}
	}
	for k := range got {
		if !want[k] {
			unexpected = append(unexpected, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(unexpected)
	for _, k := range missing {
		t.Errorf("missing expected finding %s", k)
	}
	for _, k := range unexpected {
		t.Errorf("unexpected finding %s", k)
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
	}
}

func TestErrDiscardFixture(t *testing.T) {
	checkFixture(t, "errdiscard", nil)
}

func TestGoLifecycleFixture(t *testing.T) {
	checkFixture(t, "goroutine", nil)
}

func TestLockHeldFixture(t *testing.T) {
	checkFixture(t, "lockheld", nil)
}

func TestObsNilGuardFixture(t *testing.T) {
	checkFixture(t, "obsguard", func(cfg *Config, pkgPath string) {
		cfg.ObsPkgPath = pkgPath
		cfg.ObsHandles = []string{"H"}
	})
}

func TestObsNilCallSiteFixture(t *testing.T) {
	checkFixture(t, "obsnil", nil)
}

func TestFaultGateFixture(t *testing.T) {
	checkFixture(t, "faultgate", nil)
}

func TestFrameAliasFixture(t *testing.T) {
	checkFixture(t, "framealias", func(cfg *Config, pkgPath string) {
		cfg.TuplePkgPath = pkgPath
	})
}

func TestMemGrantFixture(t *testing.T) {
	checkFixture(t, "memgrant", func(cfg *Config, pkgPath string) {
		cfg.OperatorPkgs = []string{pkgPath}
	})
}

func TestDeferUnlockFixture(t *testing.T) {
	checkFixture(t, "deferunlock", nil)
}

func TestLockOrderFixture(t *testing.T) {
	checkFixture(t, "lockorder", nil)
}

func TestResourceLeakFixture(t *testing.T) {
	checkFixture(t, "resleak", func(cfg *Config, pkgPath string) {
		cfg.ErrPkgs = nil // fixture drops Close errors on purpose
		cfg.Resources = []ResourceSpec{
			{
				Pkg: pkgPath, Recv: "Pool", Func: "Acquire", Result: 0,
				Desc: "pool resource",
				Releases: []ReleaseSpec{
					{Pkg: pkgPath, Recv: "Res", Func: "Release", Arg: -1},
				},
			},
			{
				Pkg: "os", Func: "Open", Result: 0,
				Desc: "open file",
				Releases: []ReleaseSpec{
					{Pkg: "os", Recv: "File", Func: "Close", Arg: -1},
				},
			},
		}
	})
}

func TestHotAllocFixture(t *testing.T) {
	checkFixture(t, "hotalloc", func(cfg *Config, pkgPath string) {
		cfg.HotRoots = []FuncRef{{Pkg: pkgPath, Func: "HotKernel"}}
	})
}

func TestWaitAttribFixture(t *testing.T) {
	checkFixture(t, "waitattrib", func(cfg *Config, pkgPath string) {
		cfg.WaitRoots = []FuncRef{{Pkg: pkgPath, Func: "RunTask"}}
		cfg.WaitFuncs = []FuncRef{{Pkg: pkgPath, Recv: "TC", Func: "AddWait"}}
	})
}

func TestWaitNetFixture(t *testing.T) {
	checkFixture(t, "waitnet", func(cfg *Config, pkgPath string) {
		cfg.WaitRoots = []FuncRef{{Pkg: pkgPath, Func: "SendFrames"}}
		cfg.WaitFuncs = []FuncRef{{Pkg: pkgPath, Recv: "TC", Func: "AddWait"}}
	})
}

func TestResourceLeakInterprocFixture(t *testing.T) {
	checkFixture(t, "resleakip", func(cfg *Config, pkgPath string) {
		cfg.Resources = []ResourceSpec{
			{
				Pkg: pkgPath, Recv: "Pool", Func: "Acquire", Result: 0,
				Type: "Res", Desc: "pool resource",
				Releases: []ReleaseSpec{
					{Pkg: pkgPath, Recv: "Res", Func: "Release", Arg: -1},
				},
			},
		}
	})
}

func TestCtxFlowFixture(t *testing.T) {
	checkFixture(t, "ctxflow", nil)
}

func TestPoolSafetyFixture(t *testing.T) {
	checkFixture(t, "poolsafety", func(cfg *Config, pkgPath string) {
		cfg.Pools = []PoolSpec{{
			Pkg: pkgPath, Recv: "Pool", Get: "Get", Put: "Put",
			ElemPkg: pkgPath, ElemType: "Rec", Desc: "pooled rec",
		}}
	})
}

func TestStaleSuppressionFixture(t *testing.T) {
	checkFixture(t, "stalesup", nil)
}

func TestMultiRuleSuppression(t *testing.T) {
	checkFixture(t, "multirule", func(cfg *Config, pkgPath string) {
		cfg.Resources = []ResourceSpec{
			{
				Pkg: pkgPath, Recv: "Pool", Func: "AcquireCtx", Result: 0,
				Desc: "pool resource",
				Releases: []ReleaseSpec{
					{Pkg: pkgPath, Recv: "Res", Func: "Release", Arg: -1},
				},
			},
		}
	})
}

// A lint:ignore without a reason is itself a finding, and does not
// suppress the rule it names.
func TestDirectiveMissingReason(t *testing.T) {
	l := fixtureLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "directive"))
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	diags := RunRules(DefaultConfig(), pkg, AllRules())
	rules := map[string]bool{}
	for _, d := range diags {
		rules[d.Rule] = true
	}
	if !rules["lint-directive"] {
		t.Errorf("want a lint-directive finding for the missing reason, got %v", diags)
	}
	if !rules["err-discard"] {
		t.Errorf("a reason-less directive must not suppress; want err-discard, got %v", diags)
	}
}
