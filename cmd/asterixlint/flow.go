package main

import (
	"go/ast"
	"go/token"
)

// funcBodies visits every function body in the package — declarations
// and function literals — each of which is one unit of intraprocedural
// flow analysis. Literals are visited after their enclosing function,
// outermost first.
func funcBodies(p *Package, visit func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					visit(fn, nil, fn.Body)
				}
			case *ast.FuncLit:
				visit(nil, fn, fn.Body)
			}
			return true
		})
	}
}

// posSet is the shared lattice state shape for the lock rules: fact id →
// position that generated it (the witness for diagnostics). Meet is set
// union — a fact holds at a merge if it holds on any incoming path —
// which makes these may-analyses: a report means "there exists a path".
type posSet map[string]token.Pos

func clonePosSet(s posSet) posSet {
	c := make(posSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func meetPosSet(dst, src posSet) posSet {
	for k, v := range src {
		if cur, ok := dst[k]; !ok || v < cur {
			dst[k] = v // keep the earliest witness for determinism
		}
	}
	return dst
}

func equalPosSet(a, b posSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}
