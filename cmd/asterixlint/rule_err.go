package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ruleErrDiscard flags discarded error returns from the packages where a
// dropped error means silent data loss: io, os, encoding/*, and the
// repo's own storage and txn layers. Both forms are caught: a bare call
// statement (including defer/go) whose error result vanishes, and an
// assignment that blanks the error position with `_`.
func ruleErrDiscard() *Rule {
	return &Rule{
		Name: "err-discard",
		Doc:  "no discarded error returns from io/os/encoding/storage/txn calls",
		Run:  runErrDiscard,
	}
}

func runErrDiscard(c *Config, p *Package, report func(token.Pos, string)) {
	inScope := func(fn *types.Func) bool {
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		path := fn.Pkg().Path()
		for _, pat := range c.ErrPkgs {
			if strings.HasSuffix(pat, "/") {
				if strings.HasPrefix(path, pat) {
					return true
				}
			} else if path == pat {
				return true
			}
		}
		return false
	}

	// errResults returns the indices of error-typed results of the call,
	// when the callee is in scope.
	errResults := func(call *ast.CallExpr) ([]int, string) {
		fn := calleeFunc(p.Info, call)
		if !inScope(fn) {
			return nil, ""
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return nil, ""
		}
		var idx []int
		for i := 0; i < sig.Results().Len(); i++ {
			if isErrorType(sig.Results().At(i).Type()) {
				idx = append(idx, i)
			}
		}
		return idx, fn.Pkg().Path() + "." + fn.Name()
	}

	checkBare := func(call *ast.CallExpr) {
		if idx, name := errResults(call); len(idx) > 0 {
			report(call.Pos(), "error return of "+name+" is discarded")
		}
	}

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					checkBare(call)
				}
			case *ast.DeferStmt:
				checkBare(st.Call)
			case *ast.GoStmt:
				checkBare(st.Call)
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				idx, name := errResults(call)
				if len(idx) == 0 {
					return true
				}
				for _, i := range idx {
					if i >= len(st.Lhs) {
						continue
					}
					if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						report(st.Pos(), "error return of "+name+" is assigned to _")
					}
				}
			}
			return true
		})
	}
}
