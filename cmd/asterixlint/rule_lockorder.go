package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"asterix/cmd/asterixlint/cfg"
)

// ruleLockOrder builds a repo-global lock-acquisition graph and reports
// cycles in it — the static form of the deadlock the fault matrix can
// only hope to stumble into. Within each function a flow-sensitive pass
// tracks which mutexes are held at each program point (defer Unlock
// keeps a lock held to function end; TryLock acquires only on its
// successful branch); every blocking acquisition taken while another
// lock is held contributes an edge (held → acquired), keyed by
// (package, receiver type, field). After all packages are scanned the
// graph is checked: any cycle is reported once, with the witness
// acquisition sites of every edge on it.
//
// Precision limits (see docs/STATIC_ANALYSIS.md): the abstraction
// collapses instances onto their declaring field, so hand-over-hand
// locking of two instances of one field reports as a self-cycle — which
// is why self-edges are ignored — and nesting that spans a call
// boundary (caller locks A, callee locks B) is invisible to the
// intraprocedural pass. Non-blocking TryLock acquisitions never close a
// cycle: a deadlock needs every participant to block.
func ruleLockOrder() *Rule {
	g := &lockOrderGraph{edges: map[string]map[string]lockOrderWitness{}}
	return &Rule{
		Name:   "lock-order",
		Doc:    "the repo-global mutex acquisition graph must stay acyclic",
		Run:    g.run,
		Finish: g.finish,
	}
}

// lockOrderWitness records where one ordered pair was observed: the
// acquisition that was already held, and the one taken under it.
type lockOrderWitness struct {
	heldAt, takenAt token.Pos
}

type lockOrderGraph struct {
	edges map[string]map[string]lockOrderWitness // from(held) → to(taken)
}

func (g *lockOrderGraph) run(c *Config, p *Package, report func(token.Pos, string)) {
	funcBodies(p, func(_ *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
		g.scan(p, body)
	})
}

func (g *lockOrderGraph) addEdge(from, to string, w lockOrderWitness) {
	if from == to {
		return // instance-collapsed self-edges are noise, not deadlocks
	}
	m := g.edges[from]
	if m == nil {
		m = map[string]lockOrderWitness{}
		g.edges[from] = m
	}
	if cur, ok := m[to]; !ok || w.takenAt < cur.takenAt {
		m[to] = w
	}
}

func (g *lockOrderGraph) scan(p *Package, body *ast.BlockStmt) {
	graph := cfg.New(body)
	lat := cfg.Lattice[posSet]{
		Clone: clonePosSet,
		Meet:  meetPosSet,
		Equal: equalPosSet,
		Node: func(n ast.Node, s posSet) posSet {
			if _, ok := n.(*ast.DeferStmt); ok {
				// A deferred Unlock runs at exit: the lock stays held
				// for ordering purposes on every path below.
				return s
			}
			for _, ev := range lockCalls(p, n) {
				switch ev.method {
				case "Lock", "RLock":
					if _, held := s[ev.key.id]; !held && ev.key.global {
						s[ev.key.id] = ev.pos
					}
				case "Unlock", "RUnlock":
					delete(s, ev.key.id)
				}
			}
			return s
		},
		Refine: func(blk *cfg.Block, e cfg.Edge, s posSet) posSet {
			ev, onTrue, ok := tryLockGuard(p, blk)
			if !ok || !ev.key.global {
				return s
			}
			if (onTrue && e.Kind == cfg.True) || (!onTrue && e.Kind == cfg.False) {
				if _, held := s[ev.key.id]; !held {
					s[ev.key.id] = ev.pos
				}
			}
			return s
		},
	}
	in := cfg.Forward(graph, posSet{}, lat)
	cfg.Visit(graph, in, lat, func(blk *cfg.Block, n ast.Node, before posSet) {
		if _, ok := n.(*ast.DeferStmt); ok {
			return
		}
		for _, ev := range lockCalls(p, n) {
			// Only blocking acquisitions take edges; TryLock holds
			// (via Refine) but cannot be the blocked party.
			if ev.method != "Lock" && ev.method != "RLock" {
				continue
			}
			if !ev.key.global {
				continue
			}
			for held, heldPos := range before {
				g.addEdge(held, ev.key.id, lockOrderWitness{heldAt: heldPos, takenAt: ev.pos})
			}
		}
	}, nil)
}

func (g *lockOrderGraph) finish(c *Config, fset *token.FileSet, report func(token.Pos, string)) {
	// Find strongly connected components with ≥ 2 nodes; each is at
	// least one acquisition-order cycle.
	nodes := make([]string, 0, len(g.edges))
	seen := map[string]bool{}
	for from, m := range g.edges {
		if !seen[from] {
			seen[from] = true
			nodes = append(nodes, from)
		}
		for to := range m {
			if !seen[to] {
				seen[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)

	comp := tarjanSCC(nodes, g.edges)
	reported := map[string]bool{}
	for _, scc := range comp {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		sig := strings.Join(scc, "|")
		if reported[sig] {
			continue
		}
		reported[sig] = true
		cycle := shortestCycle(scc[0], scc, g.edges)
		if len(cycle) == 0 {
			continue
		}
		var b strings.Builder
		b.WriteString("lock-order cycle: ")
		for i, id := range cycle {
			if i > 0 {
				b.WriteString(" → ")
			}
			b.WriteString(shortLockID(id))
		}
		b.WriteString(" → ")
		b.WriteString(shortLockID(cycle[0]))
		for i, id := range cycle {
			next := cycle[(i+1)%len(cycle)]
			w := g.edges[id][next]
			tp := fset.Position(w.takenAt)
			hp := fset.Position(w.heldAt)
			fmt.Fprintf(&b, "; %s taken at %s:%d while %s held (locked %s:%d)",
				shortLockID(next), shortPath(tp.Filename), tp.Line,
				shortLockID(id), shortPath(hp.Filename), hp.Line)
		}
		// Anchor the diagnostic at the first edge's second acquisition.
		report(g.edges[cycle[0]][cycle[1]].takenAt, b.String())
	}
}

// tarjanSCC computes strongly connected components over the string
// graph, deterministically (nodes pre-sorted, successors sorted).
func tarjanSCC(nodes []string, edges map[string]map[string]lockOrderWitness) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var comps [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true

		succs := make([]string, 0, len(edges[v]))
		for w := range edges[v] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			comps = append(comps, scc)
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}
	return comps
}

// shortestCycle finds a minimal cycle through start within the SCC by
// breadth-first search.
func shortestCycle(start string, scc []string, edges map[string]map[string]lockOrderWitness) []string {
	in := map[string]bool{}
	for _, n := range scc {
		in[n] = true
	}
	type qe struct {
		node string
		path []string
	}
	queue := []qe{{start, []string{start}}}
	visited := map[string]bool{start: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		succs := make([]string, 0, len(edges[cur.node]))
		for w := range edges[cur.node] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if w == start && len(cur.path) > 1 {
				return cur.path
			}
			if !in[w] || visited[w] {
				continue
			}
			visited[w] = true
			path := append(append([]string{}, cur.path...), w)
			queue = append(queue, qe{w, path})
		}
	}
	// Two-node cycle that BFS missed (start→w→start with path len 1).
	for w := range edges[start] {
		if in[w] && edges[w] != nil {
			if _, back := edges[w][start]; back {
				return []string{start, w}
			}
		}
	}
	return nil
}

// shortPath trims a filename to its last two path elements.
func shortPath(name string) string {
	parts := strings.Split(name, "/")
	if len(parts) <= 2 {
		return name
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
