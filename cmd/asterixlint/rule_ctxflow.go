package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"asterix/cmd/asterixlint/cfg"
)

// ruleCtxFlow enforces context threading: a function that receives a
// context.Context must pass that context (or one derived from it through
// context.WithCancel/WithTimeout/WithValue/...) into the context-taking
// calls it makes — including those launched in goroutines or wrapped in
// closures. Minting a fresh root with context.Background() or
// context.TODO() inside such a function "launders" the caller's
// deadline and cancellation away: the query-lifecycle tracing and the
// admission-control timeouts both stop propagating at that point.
//
// The derived set is computed flow-sensitively on the CFG, so
// reassigning the parameter (`ctx = context.Background()`) poisons only
// the uses downstream of the assignment, and re-deriving
// (`ctx = context.WithValue(parent, k, v)`) restores it. Function
// literals that declare their own context parameter are independent
// units; literals without one inherit the enclosing function's facts at
// the point the literal appears.
func ruleCtxFlow() *Rule {
	return &Rule{
		Name: "ctx-flow",
		Doc:  "functions with a ctx parameter must thread it (or a derived ctx) into context-taking calls",
		Run:  runCtxFlow,
	}
}

func runCtxFlow(c *Config, p *Package, report func(token.Pos, string)) {
	funcBodies(p, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
		var ft *ast.FuncType
		var name string
		switch {
		case decl != nil:
			ft = decl.Type
			name = decl.Name.Name
		case lit != nil:
			ft = lit.Type
			name = "func literal"
		}
		params := ctxParams(p, ft)
		if len(params) == 0 {
			return
		}
		checkCtxFlow(p, name, params, body, report)
	})
}

// ctxParams returns the objects of ft's context.Context parameters.
func ctxParams(p *Package, ft *ast.FuncType) []types.Object {
	var objs []types.Object
	if ft == nil || ft.Params == nil {
		return nil
	}
	for _, f := range ft.Params.List {
		for _, nm := range f.Names {
			if nm.Name == "_" {
				continue
			}
			if obj := p.Info.Defs[nm]; obj != nil && isContextType(obj.Type()) {
				objs = append(objs, obj)
			}
		}
	}
	return objs
}

func checkCtxFlow(p *Package, fname string, params []types.Object, body *ast.BlockStmt, report func(token.Pos, string)) {
	g := cfg.New(body)

	objID := func(obj types.Object) string { return p.Fset.Position(obj.Pos()).String() }

	entry := posSet{}
	for _, obj := range params {
		entry[objID(obj)] = obj.Pos()
	}

	// derivesFrom reports whether expr mentions any currently-derived
	// variable — `context.WithTimeout(ctx, d)` derives, `context.
	// Background()` does not. Package/function idents are not variables
	// and never match.
	derivesFrom := func(expr ast.Expr, s posSet) bool {
		found := false
		ast.Inspect(expr, func(x ast.Node) bool {
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil {
				return true
			}
			if _, ok := obj.(*types.Var); !ok {
				return true
			}
			if _, derived := s[objID(obj)]; derived {
				found = true
			}
			return true
		})
		return found
	}

	transfer := func(n ast.Node, s posSet) posSet {
		applyCtxAssign := func(lhs []ast.Expr, rhs []ast.Expr) {
			for i, l := range lhs {
				id, ok := ast.Unparen(l).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj == nil || !isContextType(obj.Type()) {
					continue
				}
				// n:1 assignments (ctx2, cancel := WithTimeout(...))
				// share the single rhs; otherwise pair positionally.
				var r ast.Expr
				if len(rhs) == 1 {
					r = rhs[0]
				} else if i < len(rhs) {
					r = rhs[i]
				}
				if r != nil && derivesFrom(r, s) {
					s[objID(obj)] = obj.Pos()
				} else {
					delete(s, objID(obj))
				}
			}
		}
		ast.Inspect(n, func(x ast.Node) bool {
			switch st := x.(type) {
			case *ast.FuncLit:
				// A literal with its own ctx param is its own unit; one
				// without inherits — but its body runs later, so its
				// assignments do not flow into this function's facts.
				return false
			case *ast.AssignStmt:
				applyCtxAssign(st.Lhs, st.Rhs)
			case *ast.DeclStmt:
				if gd, ok := st.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
							lhs := make([]ast.Expr, len(vs.Names))
							for i, nm := range vs.Names {
								lhs[i] = nm
							}
							applyCtxAssign(lhs, vs.Values)
						}
					}
				}
			}
			return true
		})
		return s
	}

	lat := cfg.Lattice[posSet]{
		Clone: clonePosSet,
		Meet:  meetPosSet,
		Equal: equalPosSet,
		Node:  transfer,
	}
	in := cfg.Forward(g, entry, lat)

	reported := map[token.Pos]bool{}
	once := func(pos token.Pos, msg string) {
		if !reported[pos] {
			reported[pos] = true
			report(pos, msg)
		}
	}

	// scanUses walks one node's expressions with the derived state
	// `before`, entering literals without their own ctx param.
	var scanUses func(n ast.Node, before posSet)
	scanUses = func(n ast.Node, before posSet) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch v := x.(type) {
			case *ast.FuncLit:
				if len(ctxParams(p, v.Type)) > 0 {
					return false // its own analysis unit
				}
				return true // inherits the enclosing facts
			case *ast.CallExpr:
				if name, ok := ctxRootCall(p.Info, v); ok {
					once(v.Pos(), fmt.Sprintf("%s receives a ctx parameter but mints a fresh root with context.%s; thread the caller's ctx (or derive via context.With*)", fname, name))
					return true
				}
				// A call whose ctx-typed argument is a known-underived
				// local launders cancellation just as surely.
				for _, arg := range v.Args {
					id, ok := ast.Unparen(arg).(*ast.Ident)
					if !ok {
						continue
					}
					obj := p.Info.Uses[id]
					if obj == nil {
						continue
					}
					if _, isVar := obj.(*types.Var); !isVar || !isContextType(obj.Type()) {
						continue
					}
					if obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
						continue // package-level context var: out of scope here
					}
					if _, derived := before[objID(obj)]; !derived {
						once(arg.Pos(), fmt.Sprintf("%s passes context %q which is not derived from its ctx parameter; cancellation will not propagate", fname, id.Name))
					}
				}
			}
			return true
		})
	}

	cfg.Visit(g, in, lat, func(blk *cfg.Block, n ast.Node, before posSet) {
		// Evaluate uses against the state before the node, but let the
		// node's own assignments apply first for compound statements
		// like `ctx := context.Background(); use(ctx)` split across
		// nodes — the CFG gives one statement per node, so `before` is
		// exact for everything inside n except n's own lhs, and an
		// expression never uses its own assignment's result.
		scanUses(n, before)
	}, nil)
}

// ctxRootCall matches context.Background() / context.TODO().
func ctxRootCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name(), true
	}
	return "", false
}
