// Call graph construction for the interprocedural engine. The graph is
// purely syntactic+type-directed: static calls and method calls resolve
// through go/types object identity, interface calls resolve to every
// implementing method declared inside the module (conservative: calls
// through interfaces with no module implementer, and calls of
// function-typed values, become Dynamic sites the rules treat as
// unprovable), and references to named functions that are not calls
// (method values, functions stored in struct fields or passed as
// arguments) become Ref edges so a summary can still follow the chain
// `sources[i].next = r.Next; ... sources[i].next()`.
//
// Function literals fold into their enclosing declaration — a call made
// inside a closure is an edge out of the declaring function — with one
// exception: a literal launched by a `go` statement runs on another
// goroutine, so its body is excluded (the launch itself is recorded as a
// Go site; the launched work neither allocates on the hot path nor
// blocks the task that spawned it).
package cfg

import (
	"go/ast"
	"go/types"
	"sort"
)

// GraphPackage is one type-checked package fed to BuildCallGraph. It
// mirrors the analyzer's Package without importing it (the analyzer
// imports cfg, not the other way around).
type GraphPackage struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// DispatchKind classifies a call site.
type DispatchKind uint8

const (
	// Static is a direct call of a package-level function.
	Static DispatchKind = iota
	// Method is a direct call of a concrete method.
	Method
	// Interface is a call through an interface; Callees holds every
	// module method that can implement it.
	Interface
	// Dynamic is a call of a function-typed value (field, parameter,
	// variable) — unresolvable without pointer analysis.
	Dynamic
	// External is a direct call of a function outside the analyzed
	// package set (stdlib, unexported siblings when linting one dir).
	External
	// Ref is not a call: a named function referenced as a value (method
	// value, function passed as argument or stored in a field). Rules
	// follow Ref edges when they must assume the reference is invoked.
	Ref
)

func (k DispatchKind) String() string {
	switch k {
	case Static:
		return "static"
	case Method:
		return "method"
	case Interface:
		return "interface"
	case Dynamic:
		return "dynamic"
	case External:
		return "external"
	case Ref:
		return "ref"
	}
	return "?"
}

// CallSite is one outgoing edge (or edge bundle, for interface
// dispatch) of a function.
type CallSite struct {
	Call *ast.CallExpr // nil for Ref sites
	Node ast.Node      // the call expression or the referencing identifier
	Kind DispatchKind
	// Callee is the resolved ID for Static/Method/External sites and
	// the interface method's own ID for Interface sites.
	Callee string
	// Callees are the module implementations an Interface site can
	// reach, sorted. Empty means no module type implements the
	// interface: the call is as opaque as a Dynamic site.
	Callees []string
	// Go marks a call launched by a `go` statement.
	Go bool
}

// CGFunc is one declared function or method with a body.
type CGFunc struct {
	ID      string
	Pkg     *GraphPackage
	Decl    *ast.FuncDecl
	Fn      *types.Func
	Calls   []CallSite
	GoVerbs int // number of `go` statements (launch sites) in the body
}

// CallGraph is the module-wide graph.
type CallGraph struct {
	Funcs map[string]*CGFunc
	IDs   []string // sorted, for deterministic iteration
}

// FuncID returns the canonical identifier of fn:
// "pkg/path.Name" for functions, "pkg/path.(Recv).Name" for methods
// (pointer receivers are stripped; generic origins are canonicalized).
func FuncID(fn *types.Func) string {
	fn = fn.Origin()
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		name := ""
		switch tt := t.(type) {
		case *types.Named:
			name = tt.Obj().Name()
		case *types.Interface:
			name = tt.String()
		default:
			name = t.String()
		}
		return pkg + ".(" + name + ")." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// BuildCallGraph constructs the graph over the given packages. Interface
// calls resolve against the named types declared in these packages only.
// Construction is two-pass: every declared function registers first, so
// the edge pass classifies Static/Method versus External exactly
// regardless of package visit order.
func BuildCallGraph(pkgs []*GraphPackage) *CallGraph {
	b := &cgBuilder{
		cg:    &CallGraph{Funcs: map[string]*CGFunc{}},
		named: collectNamedTypes(pkgs),
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				cf := &CGFunc{ID: FuncID(fn), Pkg: p, Decl: fd, Fn: fn}
				b.cg.Funcs[cf.ID] = cf
				b.cg.IDs = append(b.cg.IDs, cf.ID)
			}
		}
	}
	for _, id := range b.cg.IDs {
		b.fn(b.cg.Funcs[id])
	}
	sort.Strings(b.cg.IDs)
	return b.cg
}

type cgBuilder struct {
	cg    *CallGraph
	named []*types.Named // module named types, interface-implementation candidates
}

// collectNamedTypes gathers every package-scope concrete named type.
func collectNamedTypes(pkgs []*GraphPackage) []*types.Named {
	var out []*types.Named
	for _, p := range pkgs {
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			n, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(n) {
				continue
			}
			out = append(out, n)
		}
	}
	return out
}

func (b *cgBuilder) fn(f *CGFunc) {
	p, decl := f.Pkg, f.Decl
	// Literals launched by `go` run concurrently: exclude their bodies.
	goLits := map[*ast.FuncLit]bool{}
	goCalls := map[*ast.CallExpr]bool{}
	// Identifiers appearing as a call's function operand are calls, not
	// references.
	funIdents := map[*ast.Ident]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			f.GoVerbs++
			goCalls[x.Call] = true
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				goLits[lit] = true
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(x.Fun).(type) {
			case *ast.Ident:
				funIdents[fun] = true
			case *ast.SelectorExpr:
				funIdents[fun.Sel] = true
			}
		}
		return true
	})
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return !goLits[x]
		case *ast.CallExpr:
			b.call(f, p, x, goCalls[x])
			return true
		case *ast.Ident:
			if !funIdents[x] {
				b.ref(f, p, x)
			}
		}
		return true
	})
}

// call classifies one call expression and appends its site.
func (b *cgBuilder) call(f *CGFunc, p *GraphPackage, call *ast.CallExpr, isGo bool) {
	fun := ast.Unparen(call.Fun)
	var obj types.Object
	switch fx := fun.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fx]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fx.Sel]
	}
	switch o := obj.(type) {
	case *types.Builtin:
		// make/new/append/copy/...: allocation behavior is the
		// summarizer's business, not an edge.
		return
	case *types.TypeName:
		// Conversion: T(x). String conversions are alloc sites; again
		// the summarizer's business.
		return
	case *types.Func:
		sig, _ := o.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type().Underlying()) {
			iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
			f.Calls = append(f.Calls, CallSite{
				Call: call, Node: call, Kind: Interface,
				Callee:  FuncID(o),
				Callees: b.implementers(iface, o.Name()),
				Go:      isGo,
			})
			return
		}
		id := FuncID(o)
		kind := Static
		if sig != nil && sig.Recv() != nil {
			kind = Method
		}
		if _, ok := b.cg.Funcs[id]; !ok {
			kind = External
		}
		f.Calls = append(f.Calls, CallSite{Call: call, Node: call, Kind: kind, Callee: id, Go: isGo})
		return
	}
	// Conversion via type expression (e.g. []byte(s)) or call of a
	// function-typed value.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	f.Calls = append(f.Calls, CallSite{Call: call, Node: call, Kind: Dynamic, Go: isGo})
}

// ref records a non-call reference to a named module function.
func (b *cgBuilder) ref(f *CGFunc, p *GraphPackage, id *ast.Ident) {
	fn, ok := p.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	if fn.Pkg() == nil {
		return
	}
	f.Calls = append(f.Calls, CallSite{Node: id, Kind: Ref, Callee: FuncID(fn)})
}

// implementers returns the sorted IDs of module methods that satisfy
// (iface).method.
func (b *cgBuilder) implementers(iface *types.Interface, method string) []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range b.named {
		ptr := types.NewPointer(n)
		if !types.Implements(n, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, n.Obj().Pkg(), method)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		id := FuncID(fn)
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// SCCs returns the strongly-connected components of the graph in
// reverse topological order: every callee's component appears before
// (or with) its caller's, which is the order a bottom-up summary
// fixpoint wants. Interface sites contribute edges to every possible
// implementer; Ref edges count as calls (the reference may be
// invoked); Dynamic and External sites contribute nothing.
func (cg *CallGraph) SCCs() [][]string {
	// Tarjan, iterative to survive deep recursion chains.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	succs := func(id string) []string {
		f := cg.Funcs[id]
		if f == nil {
			return nil
		}
		var out []string
		for _, s := range f.Calls {
			switch s.Kind {
			case Static, Method, Ref:
				if _, ok := cg.Funcs[s.Callee]; ok {
					out = append(out, s.Callee)
				}
			case Interface:
				for _, c := range s.Callees {
					if _, ok := cg.Funcs[c]; ok {
						out = append(out, c)
					}
				}
			}
		}
		return out
	}

	type frame struct {
		id    string
		succs []string
		next  int
	}
	var strongconnect func(root string)
	strongconnect = func(root string) {
		frames := []frame{{id: root, succs: succs(root)}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			if fr.next < len(fr.succs) {
				w := fr.succs[fr.next]
				fr.next++
				if _, seen := index[w]; !seen {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{id: w, succs: succs(w)})
				} else if onStack[w] {
					if index[w] < low[fr.id] {
						low[fr.id] = index[w]
					}
				}
				continue
			}
			// fr done: pop, roll up lowlink, emit SCC at roots.
			if low[fr.id] == index[fr.id] {
				var comp []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == fr.id {
						break
					}
				}
				sort.Strings(comp)
				sccs = append(sccs, comp)
			}
			id := fr.id
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[id] < low[parent.id] {
					low[parent.id] = low[id]
				}
			}
		}
	}
	for _, id := range cg.IDs {
		if _, seen := index[id]; !seen {
			strongconnect(id)
		}
	}
	return sccs
}
