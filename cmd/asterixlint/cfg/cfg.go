// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and solves forward dataflow problems on them. It is
// the engine under asterixlint's flow-sensitive rules (resource-leak,
// lock-order, ctx-flow, defer-unlock); see docs/STATIC_ANALYSIS.md.
//
// The graph is deliberately simple: a Block is a maximal straight-line
// sequence of statements (plus the branch condition, when one ends the
// block), and an Edge carries just enough kind information for the
// rules to refine facts per branch (True/False), recognize loop
// back-edges, and distinguish normal returns from explicit panics.
// Defer statements are ordinary nodes — the rules interpret their
// exit-time effects — and function literals are opaque: each literal
// gets its own graph when the caller asks for one.
package cfg

import (
	"go/ast"
	"go/token"
)

// EdgeKind classifies a control-flow edge.
type EdgeKind uint8

const (
	// Flow is unconditional fallthrough control flow.
	Flow EdgeKind = iota
	// True is the taken branch of a condition (if, for-cond, TryLock
	// guards refine facts here).
	True
	// False is the not-taken branch of a condition.
	False
	// Back is a loop back-edge (body or post-statement to loop head).
	Back
	// Return enters the exit block from a return statement or from
	// falling off the end of the function.
	Return
	// Panic enters the panic block from an explicit panic(...) call.
	Panic
)

func (k EdgeKind) String() string {
	switch k {
	case Flow:
		return "flow"
	case True:
		return "true"
	case False:
		return "false"
	case Back:
		return "back"
	case Return:
		return "return"
	case Panic:
		return "panic"
	}
	return "?"
}

// Edge is one directed control-flow edge.
type Edge struct {
	To   *Block
	Kind EdgeKind
}

// Block is one basic block. Nodes holds the statements executed in
// order; a block ending in a branch holds the condition expression as
// its last node (ast.Expr), so a dataflow transfer sees it before the
// True/False edges fan out.
type Block struct {
	Index int
	Label string // diagnostic name: "entry", "if.then", "for.head", ...
	Nodes []ast.Node
	Succs []Edge
}

// Graph is the CFG of one function body.
type Graph struct {
	Blocks    []*Block // creation order; Blocks[0] is Entry
	Entry     *Block
	Exit      *Block    // target of every Return edge; has no successors
	PanicExit *Block    // target of explicit panic(...) edges
	End       token.Pos // closing brace of the body, for implicit-return diagnostics
}

// target is an unwind destination for break/continue, optionally
// labeled.
type target struct {
	label string
	brk   *Block
	cont  *Block // nil inside switch/select (no continue target)
	back  bool   // continue edge is a loop back-edge
}

type builder struct {
	g       *Graph
	cur     *Block // nil after a terminator (return/panic/break/...)
	targets []*target
	labels  map[string]*Block // goto/label name -> block
	// pendingLabel names the labeled statement being entered, so the
	// loop/switch it labels registers labeled break/continue targets.
	pendingLabel string
}

// New builds the graph for one function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{End: body.End()}
	b := &builder{g: g, labels: map[string]*Block{}}
	g.Entry = b.newBlock("entry")
	g.Exit = &Block{Label: "exit"}
	g.PanicExit = &Block{Label: "panic"}
	b.cur = g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, g.Exit, Return) // implicit return at the closing brace
	}
	g.Blocks = append(g.Blocks, g.Exit, g.PanicExit)
	for i, blk := range g.Blocks {
		blk.Index = i
	}
	return g
}

func (b *builder) newBlock(label string) *Block {
	blk := &Block{Label: label}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block, kind EdgeKind) {
	from.Succs = append(from.Succs, Edge{To: to, Kind: kind})
}

// block returns the current block, starting an unreachable one if the
// previous statement terminated control flow (dead code still gets a
// structurally valid graph).
func (b *builder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	blk := b.block()
	blk.Nodes = append(blk.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the loop/switch that claims
// it.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findTarget resolves a break/continue, innermost-first.
func (b *builder) findTarget(label string, cont bool) *target {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if label != "" && t.label != label {
			continue
		}
		if cont && t.cont == nil {
			continue
		}
		return t
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.IfStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		cond := b.block()
		cond.Nodes = append(cond.Nodes, st.Cond)
		thenB := b.newBlock("if.then")
		b.edge(cond, thenB, True)
		b.cur = thenB
		b.stmt(st.Body)
		thenEnd := b.cur
		var elseEnd *Block
		hasElse := st.Else != nil
		if hasElse {
			elseB := b.newBlock("if.else")
			b.edge(cond, elseB, False)
			b.cur = elseB
			b.stmt(st.Else)
			elseEnd = b.cur
		}
		join := b.newBlock("if.join")
		if !hasElse {
			b.edge(cond, join, False)
		}
		if thenEnd != nil {
			b.edge(thenEnd, join, Flow)
		}
		if elseEnd != nil {
			b.edge(elseEnd, join, Flow)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.stmt(st.Init)
		}
		head := b.newBlock("for.head")
		b.edge(b.block(), head, Flow)
		if label != "" {
			b.labels[label] = head
		}
		body := b.newBlock("for.body")
		var post *Block
		if st.Post != nil {
			post = b.newBlock("for.post")
		}
		join := b.newBlock("for.join")
		if st.Cond != nil {
			head.Nodes = append(head.Nodes, st.Cond)
			b.edge(head, body, True)
			b.edge(head, join, False)
		} else {
			b.edge(head, body, Flow) // for {}: join reachable only via break
		}
		cont := head
		if post != nil {
			cont = post
		}
		b.targets = append(b.targets, &target{label: label, brk: join, cont: cont, back: post == nil})
		b.cur = body
		b.stmt(st.Body)
		b.targets = b.targets[:len(b.targets)-1]
		if b.cur != nil {
			if post != nil {
				b.edge(b.cur, post, Flow)
			} else {
				b.edge(b.cur, head, Back)
			}
		}
		if post != nil {
			post.Nodes = append(post.Nodes, st.Post)
			b.edge(post, head, Back)
		}
		b.cur = join

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		b.edge(b.block(), head, Flow)
		if label != "" {
			b.labels[label] = head
		}
		// The head evaluates the range operand and, each iteration,
		// the key/value assignment: the whole RangeStmt would drag the
		// body along, so only X is recorded.
		head.Nodes = append(head.Nodes, st.X)
		body := b.newBlock("range.body")
		join := b.newBlock("range.join")
		b.edge(head, body, True)
		b.edge(head, join, False)
		b.targets = append(b.targets, &target{label: label, brk: join, cont: head, back: true})
		b.cur = body
		b.stmt(st.Body)
		b.targets = b.targets[:len(b.targets)-1]
		if b.cur != nil {
			b.edge(b.cur, head, Back)
		}
		b.cur = join

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.stmt(st.Init)
		}
		head := b.block()
		if st.Tag != nil {
			head.Nodes = append(head.Nodes, st.Tag)
		}
		b.switchBody(head, st.Body, label, "switch.case")

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.stmt(st.Init)
		}
		head := b.block()
		head.Nodes = append(head.Nodes, st.Assign)
		b.switchBody(head, st.Body, label, "typeswitch.case")

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.block()
		join := b.newBlock("select.join")
		b.targets = append(b.targets, &target{label: label, brk: join})
		for _, cc := range st.Body.List {
			clause := cc.(*ast.CommClause)
			name := "select.case"
			if clause.Comm == nil {
				name = "select.default"
			}
			caseB := b.newBlock(name)
			b.edge(head, caseB, Flow)
			b.cur = caseB
			if clause.Comm != nil {
				b.stmt(clause.Comm)
			}
			b.stmtList(clause.Body)
			if b.cur != nil {
				b.edge(b.cur, join, Flow)
			}
		}
		b.targets = b.targets[:len(b.targets)-1]
		if len(st.Body.List) == 0 {
			b.edge(head, join, Flow)
		}
		b.cur = join

	case *ast.LabeledStmt:
		name := st.Label.Name
		lb, ok := b.labels[name]
		if !ok {
			lb = b.newBlock("label." + name)
			b.labels[name] = lb
		}
		if b.cur != nil {
			b.edge(b.cur, lb, Flow)
		}
		b.cur = lb
		switch st.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = name
		}
		b.stmt(st.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			label := ""
			if st.Label != nil {
				label = st.Label.Name
			}
			if t := b.findTarget(label, false); t != nil {
				b.edge(b.block(), t.brk, Flow)
			}
			b.cur = nil
		case token.CONTINUE:
			label := ""
			if st.Label != nil {
				label = st.Label.Name
			}
			if t := b.findTarget(label, true); t != nil {
				kind := Flow
				if t.back {
					kind = Back
				}
				b.edge(b.block(), t.cont, kind)
			}
			b.cur = nil
		case token.GOTO:
			name := st.Label.Name
			lb, ok := b.labels[name]
			if !ok {
				lb = b.newBlock("label." + name)
				b.labels[name] = lb
			}
			b.edge(b.block(), lb, Flow)
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by switchBody, which knows the next clause.
		}

	case *ast.ReturnStmt:
		b.add(st)
		b.edge(b.block(), b.g.Exit, Return)
		b.cur = nil

	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok && isPanicCall(call) {
			b.add(st)
			b.edge(b.block(), b.g.PanicExit, Panic)
			b.cur = nil
			return
		}
		b.add(st)

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assignments, declarations, sends, defers, go statements,
		// inc/dec: straight-line nodes.
		b.add(s)
	}
}

// switchBody wires a (type)switch's clauses: every clause is entered
// from the head, fallthrough chains to the next clause, break (and
// clause end) exits to the join.
func (b *builder) switchBody(head *Block, body *ast.BlockStmt, label, caseName string) {
	join := b.newBlock("switch.join")
	b.targets = append(b.targets, &target{label: label, brk: join})
	blocks := make([]*Block, len(body.List))
	hasDefault := false
	for i, cc := range body.List {
		clause := cc.(*ast.CaseClause)
		name := caseName
		if clause.List == nil {
			name = "switch.default"
			hasDefault = true
		}
		blocks[i] = b.newBlock(name)
		b.edge(head, blocks[i], Flow)
	}
	if !hasDefault {
		b.edge(head, join, Flow)
	}
	for i, cc := range body.List {
		clause := cc.(*ast.CaseClause)
		b.cur = blocks[i]
		for _, e := range clause.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
		falls := false
		for _, s := range clause.Body {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls = true
				break
			}
			b.stmt(s)
		}
		if falls && i+1 < len(blocks) {
			b.edge(b.block(), blocks[i+1], Flow)
			b.cur = nil
		}
		if b.cur != nil {
			b.edge(b.cur, join, Flow)
		}
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = join
}

// isPanicCall reports a direct call to the predeclared panic. The check
// is syntactic (the cfg package has no type information); a function
// that shadows panic would be misclassified, which the repository's own
// style makes a non-concern.
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
