package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// String renders the graph in a stable textual form for golden tests
// and debugging: one section per block (creation order), each node
// printed as single-line source, each edge as "-> index kind".
func (g *Graph) String(fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "block %d %s\n", blk.Index, blk.Label)
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, "  %s\n", nodeText(fset, n))
		}
		for _, e := range blk.Succs {
			fmt.Fprintf(&sb, "  -> %d %s\n", e.To.Index, e.Kind)
		}
	}
	return sb.String()
}

// nodeText prints a node as one line of source, collapsing any interior
// newlines (multiline composite literals, deferred closures).
func nodeText(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	fields := strings.Fields(buf.String())
	return strings.Join(fields, " ")
}
