// Package cg is the call-graph golden fixture: it exercises static
// dispatch, method dispatch, interface dispatch (two module
// implementers), a method-value reference, a dynamic call of a
// function value, an external call, and a go-launched literal whose
// interior must NOT fold into the enclosing function.
package cg

import "fmt"

// Shape is dispatched through below; Circle and Square implement it.
type Shape interface {
	Area() int
}

// Circle implements Shape.
type Circle struct{ R int }

// Area implements Shape.
func (c Circle) Area() int { return 3 * c.R * c.R }

// Square implements Shape (pointer receiver).
type Square struct{ S int }

// Area implements Shape.
func (s *Square) Area() int { return s.S * s.S }

// Counter has a concrete method called directly and referenced as a
// method value.
type Counter struct{ N int }

// Inc bumps the counter.
func (c *Counter) Inc() { c.N++ }

// Helper is the static-dispatch target.
func Helper() int { return 1 }

// Leaf is only reachable through the go-launched literal: the edge must
// not appear under Caller.
func Leaf() {}

// Caller exercises every dispatch kind.
func Caller(s Shape, f func() int) int {
	n := Helper() // static
	var c Counter
	c.Inc()          // method
	n += s.Area()    // interface -> {Circle,Square}.Area
	n += f()         // dynamic
	fmt.Println(n)   // external
	step := c.Inc    // ref (method value)
	defer step()     // dynamic (calls the ref'd value)
	go func() {      // launch; interior excluded
		Leaf()
	}()
	closure := func() int { // folded literal: its call IS Caller's edge
		return Helper()
	}
	return n + closure()
}
