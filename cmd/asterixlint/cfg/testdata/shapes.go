// Package shapes is the CFG golden-test corpus: one function per
// control-flow shape the builder must handle. The golden file
// (shapes.golden) pins the exact block/edge structure, so a solver bug
// localizes to the engine rather than to whichever rule noticed it.
package shapes

func ifElse(a int) int {
	if a > 0 {
		a++
	} else {
		a--
	}
	return a
}

func ifNoElse(a int) int {
	if a > 0 {
		return 1
	}
	return 0
}

func forBreakContinue(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			continue
		}
		if i == 7 {
			break
		}
		s += i
	}
	return s
}

func forever(ch chan int) {
	for {
		if <-ch == 0 {
			break
		}
	}
}

func rangeLoop(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func switchShape(k int) string {
	switch k {
	case 0:
		return "zero"
	case 1:
		fallthrough
	case 2:
		return "small"
	default:
		return "big"
	}
}

func deferShape(unlock func()) int {
	defer unlock()
	if unlock == nil {
		panic("nil unlock")
	}
	return 1
}

func gotoShape(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return i
}

func labeledBreak(m [][]int) int {
outer:
	for _, row := range m {
		for _, v := range row {
			if v < 0 {
				break outer
			}
		}
	}
	return 0
}
