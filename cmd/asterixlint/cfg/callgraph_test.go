package cfg

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture type-checks one testdata package and wraps it as a
// GraphPackage.
func loadFixture(t *testing.T, dir, path string) *GraphPackage {
	t.Helper()
	fset := token.NewFileSet()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatal(err)
	}
	return &GraphPackage{Path: path, Files: files, Pkg: tpkg, Info: info}
}

// dump renders the graph in the golden format: functions sorted by ID,
// call sites in source order.
func dump(cg *CallGraph) string {
	var b strings.Builder
	for _, id := range cg.IDs {
		f := cg.Funcs[id]
		fmt.Fprintf(&b, "%s\n", id)
		for _, s := range f.Calls {
			line := "  " + s.Kind.String()
			if s.Callee != "" {
				line += " " + s.Callee
			}
			if s.Kind == Interface {
				line += " -> [" + strings.Join(s.Callees, " ") + "]"
			}
			if s.Go {
				line += " (go)"
			}
			fmt.Fprintf(&b, "%s\n", line)
		}
	}
	return b.String()
}

func TestCallGraphGolden(t *testing.T) {
	p := loadFixture(t, filepath.Join("testdata", "callgraph"), "cg")
	cg := BuildCallGraph([]*GraphPackage{p})
	got := dump(cg)

	goldenPath := filepath.Join("testdata", "callgraph.golden")
	if os.Getenv("ASTERIXLINT_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with ASTERIXLINT_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("call graph mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestCallGraphGoLaunchExcluded(t *testing.T) {
	p := loadFixture(t, filepath.Join("testdata", "callgraph"), "cg")
	cg := BuildCallGraph([]*GraphPackage{p})
	caller := cg.Funcs["cg.Caller"]
	if caller == nil {
		t.Fatal("cg.Caller not in graph")
	}
	if caller.GoVerbs != 1 {
		t.Errorf("GoVerbs = %d, want 1", caller.GoVerbs)
	}
	for _, s := range caller.Calls {
		if s.Callee == "cg.Leaf" {
			t.Errorf("go-launched literal interior folded into Caller: edge to cg.Leaf")
		}
	}
}

func TestSCCOrder(t *testing.T) {
	p := loadFixture(t, filepath.Join("testdata", "callgraph"), "cg")
	cg := BuildCallGraph([]*GraphPackage{p})
	sccs := cg.SCCs()
	pos := map[string]int{}
	for i, comp := range sccs {
		for _, id := range comp {
			pos[id] = i
		}
	}
	// Callee components must come no later than their callers'.
	for _, id := range cg.IDs {
		for _, s := range cg.Funcs[id].Calls {
			if s.Kind == Static || s.Kind == Method || s.Kind == Ref {
				if _, ok := cg.Funcs[s.Callee]; ok && pos[s.Callee] > pos[id] {
					t.Errorf("SCC order: callee %s after caller %s", s.Callee, id)
				}
			}
		}
	}
}
