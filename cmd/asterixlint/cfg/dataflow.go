package cfg

import "go/ast"

// Lattice defines one forward gen/kill dataflow problem over a Graph.
// The state type S is rule-defined (typically a small map of facts);
// the solver treats it opaquely through these callbacks.
type Lattice[S any] struct {
	// Clone deep-copies a state. The solver clones before every
	// transfer, so Node and Refine may mutate their argument freely.
	Clone func(S) S
	// Meet joins two states at a control-flow merge (set union for
	// may-analyses, intersection for must-analyses). It may mutate and
	// return dst.
	Meet func(dst, src S) S
	// Equal reports state equality; the fixed point is reached when no
	// block's in-state changes under Meet.
	Equal func(a, b S) bool
	// Node is the per-node transfer function. It may mutate and return s.
	Node func(n ast.Node, s S) S
	// Refine, if non-nil, adjusts a block's out-state per outgoing
	// edge — the hook for branch-sensitive facts (err != nil checks,
	// TryLock guards). It may mutate and return s.
	Refine func(blk *Block, e Edge, s S) S
}

// Forward solves the dataflow problem by worklist iteration and returns
// each reachable block's in-state. Facts must form a finite lattice
// under Meet (the rules use finite fact sets per function), which
// guarantees termination across loop back-edges.
func Forward[S any](g *Graph, entry S, lat Lattice[S]) map[*Block]S {
	in := map[*Block]S{g.Entry: entry}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	push := func(blk *Block) {
		if !queued[blk] {
			queued[blk] = true
			work = append(work, blk)
		}
	}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := lat.Clone(in[blk])
		for _, n := range blk.Nodes {
			out = lat.Node(n, out)
		}
		for _, e := range blk.Succs {
			es := lat.Clone(out)
			if lat.Refine != nil {
				es = lat.Refine(blk, e, es)
			}
			cur, ok := in[e.To]
			if !ok {
				in[e.To] = es
				push(e.To)
				continue
			}
			merged := lat.Meet(lat.Clone(cur), es)
			if !lat.Equal(merged, cur) {
				in[e.To] = merged
				push(e.To)
			}
		}
	}
	return in
}

// Visit replays the solved states in one deterministic pass: for every
// reachable block (in creation order) it calls node before each node
// transfer with the state at that point, and edge with the block's
// final out-state per successor edge (after Refine). Rules do their
// reporting here, so diagnostics fire exactly once regardless of how
// many worklist iterations the solver needed.
func Visit[S any](g *Graph, in map[*Block]S, lat Lattice[S],
	node func(blk *Block, n ast.Node, before S),
	edge func(blk *Block, e Edge, out S)) {
	for _, blk := range g.Blocks {
		s, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		out := lat.Clone(s)
		for _, n := range blk.Nodes {
			if node != nil {
				node(blk, n, lat.Clone(out))
			}
			out = lat.Node(n, out)
		}
		if edge == nil {
			continue
		}
		for _, e := range blk.Succs {
			es := lat.Clone(out)
			if lat.Refine != nil {
				es = lat.Refine(blk, e, es)
			}
			edge(blk, e, es)
		}
	}
}
