package main

import (
	"fmt"
	"go/ast"
	"go/token"

	"asterix/cmd/asterixlint/cfg"
)

// ruleDeferUnlock finds Lock()s with a return path that never Unlock()s:
// the classic early-return-under-mutex bug that leaves every later
// caller of the function deadlocked. The analysis is flow-sensitive over
// the CFG: a Lock generates a "held, unprotected" fact, an Unlock (or a
// `defer Unlock`, which covers every subsequent exit including panics)
// kills it, and any fact still live on a Return edge is a finding. A
// TryLock guard acquires only on its successful branch. Functions that
// hand a locked mutex to their caller by contract carry a lint:ignore
// with the contract written down.
func ruleDeferUnlock() *Rule {
	return &Rule{
		Name: "defer-unlock",
		Doc:  "every Lock must reach an Unlock (or defer Unlock) on all return paths",
		Run:  runDeferUnlock,
	}
}

func runDeferUnlock(c *Config, p *Package, report func(token.Pos, string)) {
	funcBodies(p, func(_ *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
		checkDeferUnlock(p, body, report)
	})
}

func checkDeferUnlock(p *Package, body *ast.BlockStmt, report func(token.Pos, string)) {
	g := cfg.New(body)
	lat := cfg.Lattice[posSet]{
		Clone: clonePosSet,
		Meet:  meetPosSet,
		Equal: equalPosSet,
		Node: func(n ast.Node, s posSet) posSet {
			if d, ok := n.(*ast.DeferStmt); ok {
				// The deferred unlock protects the rest of the
				// function: the lock is no longer at risk.
				for _, ev := range deferredUnlocks(p, d) {
					delete(s, ev.key.id)
				}
				return s
			}
			for _, ev := range lockCalls(p, n) {
				switch ev.method {
				case "Lock", "RLock":
					if _, held := s[ev.key.id]; !held {
						s[ev.key.id] = ev.pos
					}
				case "Unlock", "RUnlock":
					delete(s, ev.key.id)
				}
			}
			return s
		},
		Refine: func(blk *cfg.Block, e cfg.Edge, s posSet) posSet {
			ev, onTrue, ok := tryLockGuard(p, blk)
			if !ok {
				return s
			}
			if (onTrue && e.Kind == cfg.True) || (!onTrue && e.Kind == cfg.False) {
				if _, held := s[ev.key.id]; !held {
					s[ev.key.id] = ev.pos
				}
			}
			return s
		},
	}
	in := cfg.Forward(g, posSet{}, lat)

	// One finding per Lock site, witnessed by the first leaking return.
	reported := map[token.Pos]bool{}
	cfg.Visit(g, in, lat, nil, func(blk *cfg.Block, e cfg.Edge, out posSet) {
		if e.Kind != cfg.Return {
			return
		}
		retLine := p.Fset.Position(returnPos(blk, g)).Line
		for _, id := range sortedKeys(out) {
			pos := out[id]
			if reported[pos] {
				continue
			}
			reported[pos] = true
			report(pos, fmt.Sprintf("%s is locked here but a return path (line %d) has no Unlock; unlock on every path or use defer", shortLockID(id), retLine))
		}
	})
}

// tryLockGuard reports the TryLock event guarding blk's branch edges,
// when its last node is such a condition.
func tryLockGuard(p *Package, blk *cfg.Block) (lockEvent, bool, bool) {
	if len(blk.Nodes) == 0 {
		return lockEvent{}, false, false
	}
	cond, ok := blk.Nodes[len(blk.Nodes)-1].(ast.Expr)
	if !ok {
		return lockEvent{}, false, false
	}
	return condTryLock(p, cond)
}

// returnPos locates the return that ends blk (the closing brace for the
// implicit return).
func returnPos(blk *cfg.Block, g *cfg.Graph) token.Pos {
	if len(blk.Nodes) > 0 {
		if r, ok := blk.Nodes[len(blk.Nodes)-1].(*ast.ReturnStmt); ok {
			return r.Pos()
		}
	}
	return g.End
}

// shortLockID trims the module prefix off a lock id for readable
// messages ("asterix/internal/lsm.Tree.mu" → "lsm.Tree.mu").
func shortLockID(id string) string {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '/' {
			return id[i+1:]
		}
	}
	return id
}

// sortedKeys returns the posSet's ids ordered by witness position, then
// id, for deterministic reports.
func sortedKeys(s posSet) []string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0; j-- {
			a, b := keys[j-1], keys[j]
			if s[a] < s[b] || (s[a] == s[b] && a <= b) {
				break
			}
			keys[j-1], keys[j] = b, a
		}
	}
	return keys
}
