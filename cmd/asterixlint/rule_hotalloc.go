package main

import (
	"fmt"
	"go/token"
	"strings"
)

// ruleHotAlloc enforces that registered hot roots — per-tuple operator
// kernels, ADM comparators/serde, storage iterator Next paths — are
// transitively allocation-free. The walk descends through the summary
// table from each root: direct allocation sites (composite literals,
// non-self append growth, interface boxing, closures, string
// conversions, make/new) are findings wherever they are reached, and so
// are calls the engine cannot prove allocation-free — external callees
// off the NonAllocExt whitelist, dynamic calls, and interface calls
// with no module implementer. Allocations inside panic arguments are
// exempt (error paths are not hot), and `go`-launched work is charged
// once at the launch, not followed.
//
// A finding is silenced where the allocation is genuinely cold with a
// reasoned `//lint:ignore hot-alloc <reason>` at the allocation site —
// the deep site, not the root: one directive covers the chain from
// every root that reaches it. A directive on a *call* line is a cold
// barrier: the walk does not descend into that callee at all, which is
// how a rarely-taken subtree (fault probes, cache-miss eviction) is
// excluded with one reasoned line instead of a directive per site.
func ruleHotAlloc() *Rule {
	return &Rule{
		Name:   "hot-alloc",
		Doc:    "registered hot-path kernels must be transitively allocation-free",
		Interp: runHotAlloc,
	}
}

// shortID trims the module prefix for readable chains.
func shortID(id string) string {
	return strings.TrimPrefix(id, "asterix/internal/")
}

func chainSuffix(chain []string) string {
	if len(chain) <= 1 {
		return ""
	}
	parts := make([]string, len(chain))
	for i, id := range chain {
		parts[i] = shortID(id)
	}
	return " [via " + strings.Join(parts, " -> ") + "]"
}

// extAllowed matches name against a whitelist; entries ending in "."
// are prefixes ("sync/atomic.", "sync.(Mutex).").
func extAllowed(list []string, name string) bool {
	for _, e := range list {
		if e == name || (strings.HasSuffix(e, ".") && strings.HasPrefix(name, e)) {
			return true
		}
	}
	return false
}

func runHotAlloc(c *Config, ip *Interp, report func(token.Position, string)) {
	reported := map[string]bool{}
	emit := func(p SitePos, msg string) {
		key := fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
		if reported[key] {
			return
		}
		reported[key] = true
		report(ip.Position(p), msg)
	}
	for _, root := range c.HotRoots {
		rootID := root.ID()
		if ip.Summary(rootID) == nil {
			continue // root's package not in this run
		}
		visited := map[string]bool{}
		var visit func(id string, chain []string)
		visit = func(id string, chain []string) {
			if visited[id] {
				return
			}
			visited[id] = true
			s := ip.Summary(id)
			if s == nil {
				return
			}
			chain = append(chain, id)
			via := chainSuffix(chain)
			for _, a := range s.Allocs {
				emit(a.P, fmt.Sprintf("%s in hot path rooted at %s%s", a.What, shortID(rootID), via))
			}
			for _, e := range s.Edges {
				if e.Go {
					continue // launch already charged as an alloc site
				}
				if ip.edgeSuppressed("hot-alloc", e.P) {
					continue // reasoned cold barrier at the call line
				}
				switch e.Kind {
				case "static", "method":
					visit(e.Callees[0], chain)
				case "ref":
					callee := e.Callees[0]
					if strings.Contains(callee, ".(") {
						emit(e.P, fmt.Sprintf("method value of %s allocates in hot path rooted at %s%s",
							shortID(callee), shortID(rootID), via))
					}
					visit(callee, chain)
				case "interface":
					if len(e.Callees) == 0 {
						emit(e.P, fmt.Sprintf("interface call %s has no module implementer: cannot prove allocation-free in hot path rooted at %s%s",
							shortID(e.Ext), shortID(rootID), via))
						continue
					}
					for _, callee := range e.Callees {
						visit(callee, chain)
					}
				case "dynamic":
					emit(e.P, fmt.Sprintf("dynamic call cannot be proven allocation-free in hot path rooted at %s%s",
						shortID(rootID), via))
				case "external":
					if !extAllowed(c.NonAllocExt, e.Ext) {
						emit(e.P, fmt.Sprintf("call to %s is not proven allocation-free in hot path rooted at %s%s (whitelist in NonAllocExt or restructure)",
							e.Ext, shortID(rootID), via))
					}
				}
			}
		}
		visit(rootID, nil)
	}
}

var _ = token.NoPos
