package asterix

// One benchmark per experiment of DESIGN.md's per-experiment index
// (E1–E10). Each drives the same harness as cmd/asterixbench; run
//
//	go test -bench=. -benchmem
//
// for shapes, and `go run ./cmd/asterixbench` for the full report tables
// recorded in EXPERIMENTS.md.

import (
	"testing"

	"asterix/internal/experiments"
)

// benchScale keeps testing.B iterations meaningful without multi-minute
// runs; cmd/asterixbench uses experiments.Full.
var benchScale = experiments.Scale{
	Users: 1000, Messages: 3000, Points: 10000, Keys: 10000,
	LogLines: 1000, SortRows: 20000, Queries: 1,
}

func benchExperiment(b *testing.B, run func(experiments.Scale, string) (*experiments.Report, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := run(benchScale, b.TempDir()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1ScaleOut — §III scale-out claim / [13].
func BenchmarkE1ScaleOut(b *testing.B) { benchExperiment(b, experiments.E1ScaleOut) }

// BenchmarkE2Spatial — §V-B LSM spatial-index study [23].
func BenchmarkE2Spatial(b *testing.B) { benchExperiment(b, experiments.E2Spatial) }

// BenchmarkE3BtreeVsHash — §V-C B+tree vs linear hashing (Graefe).
func BenchmarkE3BtreeVsHash(b *testing.B) { benchExperiment(b, experiments.E3BtreeVsHash) }

// BenchmarkE4MRvsHyracks — §IV MapReduce-vs-parallel-DB judgment.
func BenchmarkE4MRvsHyracks(b *testing.B) { benchExperiment(b, experiments.E4MRvsHyracks) }

// BenchmarkE5MemoryBudget — Fig. 2 budgeted-operator spilling.
func BenchmarkE5MemoryBudget(b *testing.B) { benchExperiment(b, experiments.E5MemoryBudget) }

// BenchmarkE6HTAPIsolation — §VI / Fig. 7 shadow-ingest isolation.
func BenchmarkE6HTAPIsolation(b *testing.B) { benchExperiment(b, experiments.E6HTAPIsolation) }

// BenchmarkE7AqlVsSqlpp — §IV-A peer-language claim.
func BenchmarkE7AqlVsSqlpp(b *testing.B) { benchExperiment(b, experiments.E7AqlVsSqlpp) }

// BenchmarkE8MergePolicy — LSM merge-policy ablation.
func BenchmarkE8MergePolicy(b *testing.B) { benchExperiment(b, experiments.E8MergePolicy) }

// BenchmarkE9Figure3 — the paper's own Figure 3(c) query end-to-end.
func BenchmarkE9Figure3(b *testing.B) { benchExperiment(b, experiments.E9Figure3) }

// BenchmarkE10Recovery — WAL redo recovery (§III feature 9).
func BenchmarkE10Recovery(b *testing.B) { benchExperiment(b, experiments.E10Recovery) }

// BenchmarkE11PKSortAblation — the pk-sort-before-fetch trick of [26].
func BenchmarkE11PKSortAblation(b *testing.B) { benchExperiment(b, experiments.E11PKSortAblation) }

// BenchmarkE12Compression — the §VII storage-compression feature.
func BenchmarkE12Compression(b *testing.B) { benchExperiment(b, experiments.E12Compression) }
