# Tier-1: the must-stay-green gate for every PR.
tier1:
	go build ./... && go test ./...

# verify: tier-1 plus static analysis and race-detection over the
# concurrent observability/executor code paths.
verify: tier1
	go vet ./...
	go test -race ./internal/obs/... ./internal/server/... ./internal/hyracks/...

bench:
	go test -bench . -benchtime 1x -run NONE .

.PHONY: tier1 verify bench
