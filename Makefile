# Tier-1: the must-stay-green gate for every PR.
tier1:
	go build ./... && go test ./...

# verify: tier-1 plus go vet, the project linter, the optimizer gate, and
# the race detector over the whole module.
verify: tier1 lint optimizer
	go vet ./...
	go test -race ./...

# optimizer: the plan-quality gate — golden plan tests, hash-join and
# join-order regressions, rule idempotence, and the optimizer on/off
# equivalence corpus under the race detector. Regenerate drifted goldens
# with ASTERIX_UPDATE_GOLDEN=1 go test ./internal/algebricks -run TestGoldenPlans.
optimizer:
	go test -run 'TestGoldenPlans|TestHashJoin|TestGreedy|TestOptimizer|TestIndexSelection|TestPlanJSON|TestRule' ./internal/algebricks/
	go test -race -run 'TestOptimizerOnOffEquivalence|TestOptimizerDisableRule|TestResultCarriesPlanAndRules' ./internal/core/

# lint: project-specific static analysis (see docs/STATIC_ANALYSIS.md).
# -stats prints per-rule finding counts and wall time; the interprocedural
# summaries are cached in .lintcache keyed on the Go file hash set, and
# -max-wall turns a lint run slower than 120s into a failure (exit 3) so
# the gate stays fast enough to keep in CI. -strict-suppressions promotes
# stale //lint:ignore directives (suppressing nothing) to failures.
lint:
	go run ./cmd/asterixlint -stats -summary-cache .lintcache -max-wall 120s -strict-suppressions ./...

# invariants: the test suite with deep structural validators compiled in
# (see internal/check).
invariants:
	go test -tags invariants ./...

# fault-matrix: the robustness gate — crash-recovery matrix, node-failure
# and cancellation tests, and the WAL torn-tail suite, with deep
# validators compiled in (see docs/ROBUSTNESS.md).
fault-matrix:
	go test -tags invariants -run 'TestCrash|TestKillNode|TestRunWithRetry|TestRunFails|TestNodeCrash|TestCancelMidQuery|TestRepairTail|TestTornWrite|TestWALSync|TestFlushFault|TestMergeFault|TestLockTimeout' \
		./internal/core/ ./internal/hyracks/ ./internal/txn/ ./internal/lsm/
	ASTERIX_FAULTS="hyracks.frame.delay:delay=1ms:times=4" go test -count=1 ./internal/hyracks/

# net-matrix: the network-failure gate — in-process transport fault tests
# (drop, delay, partition, conn-reset, torn frames) plus the multi-process
# cluster smoke test, which boots three asterixd processes and drives a
# distributed join through injected link faults and a killed node
# (gated on ASTERIX_NET_MATRIX so plain `go test ./...` stays fast).
net-matrix:
	go test -count=1 -run 'TestNetDrop|TestNetDelay|TestHeartbeatPartition|TestConnResetMidFrame|TestPartitionDuringExchange|TestWaitNetAttribution|TestTwoPeerExchange|TestConcentratedMergeExact|TestRecvOverflowPoisonsEdge|TestPeerDownRevivesOnHeal|TestConcurrentRunsSameSpecID' \
		./internal/net/ ./internal/dist/
	ASTERIX_NET_MATRIX=1 go test -count=1 -timeout 180s -run 'TestParsePeers|TestMultiProcessCluster' -v ./cmd/asterixd/

# bench: every top-level Go benchmark once.
bench:
	go test -bench . -benchtime 1x -run NONE .

# bench-smoke: the CI perf gate — run the experiment suite at the small
# scale, emit the structured BENCH_ci.json artifact, and diff it against
# the checked-in BENCH_1.json baseline. Timings stay warn-only (shared CI
# hosts are noisy), but allocation counters are deterministic and gate
# hard: an allocs/op or allocs/row regression fails the job.
bench-smoke:
	go run ./cmd/asterixbench -scale small -out BENCH_ci.json
	go run ./cmd/asterixbench -compare BENCH_1.json -in BENCH_ci.json -warn-only -hard-units allocs/op,allocs/row

# fuzz-smoke: a short bounded run of each fuzz target (CI uses this).
fuzz-smoke:
	go test -run NONE -fuzz FuzzADMBinaryRoundTrip -fuzztime 10s ./internal/adm
	go test -run NONE -fuzz FuzzSQLPPParse -fuzztime 10s ./internal/sqlpp
	go test -run NONE -fuzz FuzzFrameDecode -fuzztime 10s ./internal/net

help:
	@echo "Targets:"
	@echo "  tier1       build + test (the must-stay-green gate)"
	@echo "  verify      tier1 + lint + optimizer + go vet + race detector"
	@echo "  lint        asterixlint static analysis over the module"
	@echo "  optimizer   golden plans, join regressions, on/off equivalence (race)"
	@echo "  invariants  tests with deep structural validators enabled"
	@echo "  fault-matrix crash-recovery + node-failure tests with validators on"
	@echo "  net-matrix  transport fault tests + 3-process cluster smoke test"
	@echo "  fuzz-smoke  short bounded fuzz run (ADM codec, SQL++ parser, frame decoder)"
	@echo "  bench       top-level benchmarks"
	@echo "  bench-smoke small-scale experiment run -> BENCH_ci.json, diffed vs BENCH_1.json (alloc counters gate hard)"

.PHONY: tier1 verify lint optimizer invariants fault-matrix net-matrix bench bench-smoke fuzz-smoke help
