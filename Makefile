# Tier-1: the must-stay-green gate for every PR.
tier1:
	go build ./... && go test ./...

# verify: tier-1 plus go vet, the project linter, and the race detector
# over the whole module.
verify: tier1 lint
	go vet ./...
	go test -race ./...

# lint: project-specific static analysis (see docs/STATIC_ANALYSIS.md).
lint:
	go run ./cmd/asterixlint ./...

# invariants: the test suite with deep structural validators compiled in
# (see internal/check).
invariants:
	go test -tags invariants ./...

bench:
	go test -bench . -benchtime 1x -run NONE .

# fuzz-smoke: a short bounded run of each fuzz target (CI uses this).
fuzz-smoke:
	go test -run NONE -fuzz FuzzADMBinaryRoundTrip -fuzztime 10s ./internal/adm
	go test -run NONE -fuzz FuzzSQLPPParse -fuzztime 10s ./internal/sqlpp

help:
	@echo "Targets:"
	@echo "  tier1       build + test (the must-stay-green gate)"
	@echo "  verify      tier1 + lint + go vet + race detector"
	@echo "  lint        asterixlint static analysis over the module"
	@echo "  invariants  tests with deep structural validators enabled"
	@echo "  fuzz-smoke  short bounded fuzz run (ADM codec, SQL++ parser)"
	@echo "  bench       top-level benchmarks"

.PHONY: tier1 verify lint invariants bench fuzz-smoke help
